package runtime

import (
	"errors"
	"sync"

	"patterndp/internal/core"
	"patterndp/internal/dp"
)

// Answer is one released query answer enriched with serving provenance: the
// stream key the window was cut from, the shard that served it, and the
// control-plane epoch it was served under — the epoch's query and private
// sets are exactly the ones that produced the answer. WindowIndex counts
// windows per stream feed, so answers for one stream arrive in strictly
// increasing window order — until the stream is evicted under
// Config.EvictAfter, after which a returning stream starts a fresh feed with
// WindowIndex 0.
type Answer struct {
	// Stream is the key of the stream the window belongs to.
	Stream string
	// Shard is the index of the shard that served the window.
	Shard int
	// Epoch is the control-plane epoch the window was served under.
	Epoch Epoch
	// SpentEpsilon is the stream's sequential privacy spend in its current
	// budget epoch after this window's release, and RemainingEpsilon the
	// unspent grant. Both are zero unless Config.Budget enables accounting.
	SpentEpsilon dp.Epsilon
	// RemainingEpsilon is the stream's unspent grant (never negative).
	RemainingEpsilon dp.Epsilon
	// Suppressed marks a data-independent placeholder released in place of
	// a real answer the stream's budget could not cover (BudgetSuppress /
	// BudgetThrottle / the window that triggered BudgetRotateEpoch):
	// Detected is unconditionally false and the window carries its
	// interval only. Suppressed answers spend no budget.
	Suppressed bool
	// TraceNanos is the lifecycle-trace origin (unix nanoseconds of ingest
	// admission) when the answer was served from a batch selected by
	// Config.TraceSample; 0 otherwise. Serving layers use it to observe
	// end-to-end ingest→deliver latency. It is provenance, not payload —
	// the wire codec never encodes it.
	TraceNanos int64
	core.Answer
}

// ErrSubscriptionCancelled is reported by Subscription.Err after the
// subscriber itself cancelled the subscription.
var ErrSubscriptionCancelled = errors.New("runtime: subscription cancelled")

// Subscription is one consumer's handle on a query's released answers.
// Receive from C until it closes; Cancel detaches early. A subscription
// whose buffer fills backpressures serving, so either drain C until it
// closes or Cancel.
type Subscription struct {
	query string
	bus   *bus
	ch    chan Answer
	// done is closed before ch so an in-flight publish blocked on a full
	// buffer aborts instead of racing the channel close.
	done chan struct{}
	once sync.Once

	// sendMu serializes deliveries against the channel close; it is held
	// across a blocking send, so nothing else may wait on it while holding
	// stateMu.
	sendMu sync.Mutex
	// stateMu guards closed and err only, so status reads (Err) never
	// block behind a backpressured delivery.
	stateMu sync.Mutex
	closed  bool
	err     error
}

// C returns the answer channel. It closes after Cancel (once any buffered
// answers are drained) or when the runtime closes.
func (s *Subscription) C() <-chan Answer { return s.ch }

// Query returns the query name the subscription was opened for ("" for the
// subscribe-all subscription).
func (s *Subscription) Query() string { return s.query }

// Cancel detaches the subscription from the answer bus and closes its
// channel, releasing its resources; answers already buffered can still be
// drained from C. Cancel is idempotent and safe to call concurrently with
// delivery — an answer being delivered at that instant is either buffered or
// discarded, never lost mid-send.
func (s *Subscription) Cancel() {
	s.bus.remove(s)
	s.terminate(ErrSubscriptionCancelled)
}

// Err reports why delivery stopped: nil while the subscription is live and
// after the runtime closed it on Close (normal end of stream), or
// ErrSubscriptionCancelled after Cancel.
func (s *Subscription) Err() error {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.err
}

// terminate closes the subscription exactly once, recording err as the
// reason. done is closed before taking sendMu so a sender blocked inside
// send (which holds sendMu) is released before the channel close waits on
// the lock.
func (s *Subscription) terminate(err error) {
	s.once.Do(func() {
		close(s.done)
		s.sendMu.Lock()
		s.stateMu.Lock()
		s.err = err
		s.closed = true
		s.stateMu.Unlock()
		close(s.ch)
		s.sendMu.Unlock()
	})
}

// send delivers one answer, blocking while the buffer is full — that is the
// delivery-side backpressure. Holding sendMu across the send is what makes
// Cancel safe: terminate can only close the channel between sends, and a
// blocked send is first released via done.
func (s *Subscription) send(a Answer) {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	s.stateMu.Lock()
	closed := s.closed
	s.stateMu.Unlock()
	if closed {
		return
	}
	select {
	case s.ch <- a:
	case <-s.done:
	}
}

// bus fans released answers out to per-query subscribers. Publishing blocks
// when a subscriber's buffer is full; consumers must drain or cancel.
type bus struct {
	mu     sync.RWMutex
	buffer int
	subs   map[string]map[*Subscription]struct{} // query name → subscribers; "" receives all
	closed bool
}

func newBus(buffer int) *bus {
	return &bus{buffer: buffer, subs: make(map[string]map[*Subscription]struct{})}
}

// add registers a new subscriber for the named query ("" for every query).
// After the bus has closed the returned subscription is already terminated.
func (b *bus) add(query string) *Subscription {
	s := &Subscription{
		query: query,
		bus:   b,
		ch:    make(chan Answer, b.buffer),
		done:  make(chan struct{}),
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		s.terminate(nil)
		return s
	}
	set := b.subs[query]
	if set == nil {
		set = make(map[*Subscription]struct{})
		b.subs[query] = set
	}
	set[s] = struct{}{}
	return s
}

// remove detaches a subscription so it can be garbage collected and no
// longer stalls publishing. Removing an already-removed subscription is a
// no-op.
func (b *bus) remove(s *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if set := b.subs[s.query]; set != nil {
		delete(set, s)
		if len(set) == 0 {
			delete(b.subs, s.query)
		}
	}
}

// subscribers counts the live subscriptions for one query name.
func (b *bus) subscribers(query string) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.subs[query])
}

// count totals the live subscriptions across every query, including the
// subscribe-all set.
func (b *bus) count() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	n := 0
	for _, set := range b.subs {
		n += len(set)
	}
	return n
}

// publish delivers an answer to the query's subscribers and to the
// subscribe-all set. Sends happen outside the bus lock so a slow subscriber
// stalls publishers but never blocks new subscriptions or cancellations.
func (b *bus) publish(a Answer) {
	b.mu.RLock()
	targets := make([]*Subscription, 0, len(b.subs[a.Query])+len(b.subs[""]))
	for s := range b.subs[a.Query] {
		targets = append(targets, s)
	}
	for s := range b.subs[""] {
		targets = append(targets, s)
	}
	b.mu.RUnlock()
	for _, s := range targets {
		s.send(a)
	}
}

// pubTarget pairs a subscription with the index of the batched answer it is
// to receive.
type pubTarget struct {
	sub *Subscription
	idx int32
}

// collect gathers the delivery targets for a whole answer batch under a
// single reader lock, appending into the caller's reusable scratch — the
// batched form of publish's lookup phase. The caller performs the sends
// outside the lock, preserving publish's property that a slow subscriber
// never blocks subscription changes.
func (b *bus) collect(dst []pubTarget, answers []Answer) []pubTarget {
	b.mu.RLock()
	defer b.mu.RUnlock()
	all := b.subs[""]
	for i := range answers {
		for s := range b.subs[answers[i].Query] {
			dst = append(dst, pubTarget{s, int32(i)})
		}
		for s := range all {
			dst = append(dst, pubTarget{s, int32(i)})
		}
	}
	return dst
}

// close terminates every remaining subscription with a nil reason (normal
// end of stream). The runtime only calls it after all shards have drained,
// so no publish can be in flight.
func (b *bus) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, set := range b.subs {
		for s := range set {
			s.terminate(nil)
		}
	}
	b.subs = make(map[string]map[*Subscription]struct{})
}
