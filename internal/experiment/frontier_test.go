package experiment

import (
	"strings"
	"testing"
)

func TestMinBudgetForQualityFindsBudget(t *testing.T) {
	b := smallSynthBench(t, 20)
	p, err := MinBudgetForQuality(b, SpecUniform, 0.8, FrontierConfig{Reps: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible {
		t.Fatal("0.8 should be feasible at some budget")
	}
	if p.AchievedQ < 0.8 {
		t.Errorf("achieved %v below target", p.AchievedQ)
	}
	if p.Epsilon <= 0 || p.Epsilon > 50 {
		t.Errorf("epsilon = %v out of range", p.Epsilon)
	}
}

func TestMinBudgetMonotoneInTarget(t *testing.T) {
	b := smallSynthBench(t, 21)
	cfg := FrontierConfig{Reps: 2, Seed: 2}
	lo, err := MinBudgetForQuality(b, SpecUniform, 0.7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := MinBudgetForQuality(b, SpecUniform, 0.95, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Feasible && hi.Feasible && hi.Epsilon < lo.Epsilon {
		t.Errorf("stricter quality needs less budget: eps(0.7)=%v eps(0.95)=%v",
			lo.Epsilon, hi.Epsilon)
	}
}

func TestMinBudgetInfeasible(t *testing.T) {
	b := smallSynthBench(t, 22)
	// Cap the budget so low nothing useful is achievable.
	p, err := MinBudgetForQuality(b, SpecUniform, 0.999, FrontierConfig{
		MaxEpsilon: 0.01, Reps: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Feasible {
		t.Errorf("0.999 at eps<=0.01 reported feasible (achieved %v)", p.AchievedQ)
	}
}

func TestMinBudgetValidation(t *testing.T) {
	b := smallSynthBench(t, 23)
	if _, err := MinBudgetForQuality(b, SpecUniform, 0, FrontierConfig{}); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := MinBudgetForQuality(b, SpecUniform, 1.5, FrontierConfig{}); err == nil {
		t.Error("target > 1 accepted")
	}
	if _, err := MinBudgetForQuality(b, "bogus", 0.5, FrontierConfig{Reps: 1}); err == nil {
		t.Error("unknown spec accepted")
	}
}

func TestFrontierAndWriter(t *testing.T) {
	b := smallSynthBench(t, 24)
	points, err := Frontier(b, SpecUniform, []float64{0.7, 0.9}, FrontierConfig{Reps: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	var sb strings.Builder
	WriteFrontier(&sb, "frontier", SpecUniform, points)
	out := sb.String()
	if !strings.Contains(out, "uniform") || !strings.Contains(out, "0.700") {
		t.Errorf("frontier table:\n%s", out)
	}
}
