package core

import (
	"fmt"
	"math"
	"sort"

	"patterndp/internal/cep"
	"patterndp/internal/event"
)

// This file implements the paper's Section V-C "future improvements": data
// subjects and consumers are not privacy experts, so their classification of
// relevant events can be incomplete. The engine can estimate correlations
// between events and private patterns from historical data and surface
// latent relationships — events that statistically reveal the private
// pattern even though they are not registered as its elements.

// Correlation is the estimated association between one event type and the
// occurrence of a private pattern, measured per historical window.
type Correlation struct {
	// Type is the candidate event type.
	Type event.Type
	// Phi is the phi coefficient (Pearson correlation of two binary
	// variables) between the event's presence and the pattern's presence,
	// in [-1, 1].
	Phi float64
	// Support is the fraction of windows where the event was present.
	Support float64
	// Lift is P(pattern | event) / P(pattern); > 1 means the event makes
	// the pattern more likely. 0 when undefined.
	Lift float64
}

// EstimateCorrelations measures, over historical windows, how strongly each
// candidate event type correlates with the private pattern's occurrence.
// Types that are already elements of the pattern are skipped. Results are
// sorted by |Phi| descending.
func EstimateCorrelations(history []IndicatorWindow, pt PatternType, candidates []event.Type) ([]Correlation, error) {
	if len(history) == 0 {
		return nil, fmt.Errorf("core: no historical windows")
	}
	elements := pt.ElementSet()
	expr := pt.Expr()
	n := float64(len(history))

	// Pattern presence per window.
	patPresent := make([]bool, len(history))
	patCount := 0.0
	for i, w := range history {
		patPresent[i] = cep.EvalIndicators(expr, w.Present)
		if patPresent[i] {
			patCount++
		}
	}
	pPat := patCount / n

	var out []Correlation
	for _, t := range candidates {
		if elements[t] {
			continue
		}
		var both, evOnly, patOnly, neither float64
		for i, w := range history {
			ev := w.Present[t]
			switch {
			case ev && patPresent[i]:
				both++
			case ev && !patPresent[i]:
				evOnly++
			case !ev && patPresent[i]:
				patOnly++
			default:
				neither++
			}
		}
		pEv := (both + evOnly) / n
		c := Correlation{Type: t, Support: pEv}
		// Phi coefficient from the 2x2 contingency table.
		denom := math.Sqrt((both + evOnly) * (patOnly + neither) * (both + patOnly) * (evOnly + neither))
		if denom > 0 {
			c.Phi = (both*neither - evOnly*patOnly) / denom
		}
		if pEv > 0 && pPat > 0 {
			c.Lift = (both / (both + evOnly)) / pPat
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		return math.Abs(out[i].Phi) > math.Abs(out[j].Phi)
	})
	return out, nil
}

// SuggestRelevantEvents returns candidate event types whose |Phi| with the
// private pattern meets the threshold — latent relationships the data
// subject may want protected. threshold must lie in (0, 1].
func SuggestRelevantEvents(history []IndicatorWindow, pt PatternType, candidates []event.Type, threshold float64) ([]event.Type, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("core: threshold %v outside (0, 1]", threshold)
	}
	cors, err := EstimateCorrelations(history, pt, candidates)
	if err != nil {
		return nil, err
	}
	var out []event.Type
	for _, c := range cors {
		if math.Abs(c.Phi) >= threshold {
			out = append(out, c.Type)
		}
	}
	return out, nil
}

// ExtendPatternType returns a new pattern type with the suggested latent
// events appended to the original elements, for registration with a PPM.
// The extended type's budget then also covers the correlated events.
func ExtendPatternType(pt PatternType, extra []event.Type) (PatternType, error) {
	if len(extra) == 0 {
		return pt, nil
	}
	elements := append(append([]event.Type{}, pt.Elements...), extra...)
	return NewPatternType(pt.Name+"+latent", elements...)
}
