package experiment

import (
	"strings"
	"testing"

	"patterndp/internal/core"
	"patterndp/internal/taxi"
)

func quickCfg(seed int64) Fig4Config {
	cfg := DefaultFig4Config(seed)
	cfg.Reps = 1
	cfg.Adaptive = core.AdaptiveConfig{MaxIters: 2}
	cfg.TaxiCfg = taxi.DefaultConfig(seed)
	cfg.TaxiCfg.GridW, cfg.TaxiCfg.GridH = 6, 6
	cfg.TaxiCfg.NumTaxis = 8
	cfg.TaxiCfg.Ticks = 80
	return cfg
}

func TestAblationPatternLength(t *testing.T) {
	rows, err := AblationPatternLength(quickCfg(1), 1.0, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Param != 1 || rows[1].Param != 2 {
		t.Errorf("params = %v, %v", rows[0].Param, rows[1].Param)
	}
	// Each row covers the Fig. 4 mechanism set.
	if len(rows[0].Results) != len(Fig4Specs()) {
		t.Errorf("row results = %d", len(rows[0].Results))
	}
	// Longer patterns should hurt the uniform PPM (budget spreads thinner).
	mre := func(row AblationRow, spec MechanismSpec) float64 {
		for _, r := range row.Results {
			if r.Mechanism == spec {
				return r.MRE.Mean
			}
		}
		t.Fatalf("spec %s missing", spec)
		return 0
	}
	if mre(rows[1], SpecUniform) < mre(rows[0], SpecUniform)-0.05 {
		t.Errorf("m=2 uniform MRE %v much lower than m=1 %v",
			mre(rows[1], SpecUniform), mre(rows[0], SpecUniform))
	}
}

func TestAblationPatternLengthInvalid(t *testing.T) {
	// PatternLen > NumTypes must surface the generator's validation error.
	if _, err := AblationPatternLength(quickCfg(2), 1.0, []int{999}); err == nil {
		t.Error("invalid length accepted")
	}
}

func TestAblationOverlap(t *testing.T) {
	rows, err := AblationOverlap(quickCfg(3), 1.0, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	uniform := func(row AblationRow) float64 {
		for _, r := range row.Results {
			if r.Mechanism == SpecUniform {
				return r.MRE.Mean
			}
		}
		t.Fatal("uniform missing")
		return 0
	}
	// At zero overlap the pattern-level PPM perturbs nothing the targets
	// query: MRE must be (near) zero; at full overlap it must be larger.
	if uniform(rows[0]) > 0.01 {
		t.Errorf("zero-overlap uniform MRE = %v, want ~0", uniform(rows[0]))
	}
	if uniform(rows[1]) < uniform(rows[0]) {
		t.Errorf("full-overlap MRE %v below zero-overlap %v",
			uniform(rows[1]), uniform(rows[0]))
	}
	var sb strings.Builder
	WriteAblation(&sb, "overlap", "overlap", rows)
	if !strings.Contains(sb.String(), "overlap") {
		t.Error("table broken")
	}
}

func TestAblationOverlapInvalid(t *testing.T) {
	cfg := quickCfg(4)
	if _, err := AblationOverlap(cfg, 1.0, []float64{2.0}); err == nil {
		t.Error("overlap > 1 accepted")
	}
}
