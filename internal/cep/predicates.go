package cep

import (
	"patterndp/internal/event"
)

// Attribute predicate helpers for building filtered atoms. All helpers
// return false for events missing the attribute or holding a different
// kind, so filters never match on absent data.

// AttrEq matches events whose attribute k equals v.
func AttrEq(k string, v event.Value) Predicate {
	return func(e event.Event) bool {
		got, ok := e.Attr(k)
		return ok && got.Equal(v)
	}
}

// AttrGT matches events whose numeric attribute k is strictly greater than
// threshold. Int attributes are widened to float64.
func AttrGT(k string, threshold float64) Predicate {
	return func(e event.Event) bool {
		got, ok := e.Attr(k)
		if !ok {
			return false
		}
		f, ok := got.AsFloat()
		return ok && f > threshold
	}
}

// AttrLT matches events whose numeric attribute k is strictly less than
// threshold.
func AttrLT(k string, threshold float64) Predicate {
	return func(e event.Event) bool {
		got, ok := e.Attr(k)
		if !ok {
			return false
		}
		f, ok := got.AsFloat()
		return ok && f < threshold
	}
}

// AttrBetween matches events whose numeric attribute k lies in [lo, hi].
func AttrBetween(k string, lo, hi float64) Predicate {
	return func(e event.Event) bool {
		got, ok := e.Attr(k)
		if !ok {
			return false
		}
		f, ok := got.AsFloat()
		return ok && f >= lo && f <= hi
	}
}

// SourceIs matches events from one originating stream.
func SourceIs(src string) Predicate {
	return func(e event.Event) bool { return e.Source == src }
}

// AllOf combines predicates conjunctively.
func AllOf(ps ...Predicate) Predicate {
	return func(e event.Event) bool {
		for _, p := range ps {
			if !p(e) {
				return false
			}
		}
		return true
	}
}

// AnyOf combines predicates disjunctively.
func AnyOf(ps ...Predicate) Predicate {
	return func(e event.Event) bool {
		for _, p := range ps {
			if p(e) {
				return true
			}
		}
		return false
	}
}

// Not inverts a predicate.
func Not(p Predicate) Predicate {
	return func(e event.Event) bool { return !p(e) }
}
