package event

import (
	"strings"
	"testing"
)

// FuzzParseLine feeds arbitrary text to the line parser: it must never
// panic, and every line it accepts must re-marshal to the same line — the
// codec's canonical-form invariant.
func FuzzParseLine(f *testing.F) {
	f.Add("gps-fix\t42\ttaxi-7")
	f.Add("a\t-1\t")
	f.Add("a\t5\tsrc\textra")
	f.Add("\t5\tsrc")
	f.Add("a\tnot-a-number\tsrc")
	f.Add(strings.Repeat("x", 1024) + "\t9\ts")

	f.Fuzz(func(t *testing.T, line string) {
		e, err := ParseLine(line)
		if err != nil {
			return
		}
		if e.Type == "" {
			t.Fatalf("line %q accepted with empty type", line)
		}
		again, err := ParseLine(e.MarshalLine())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", e.MarshalLine(), err)
		}
		if !e.Equal(again) {
			t.Fatalf("line %q not canonical: %v vs %v", line, e, again)
		}
	})
}

// FuzzDecodeBinary feeds arbitrary bytes to the binary event decoder: it
// must never panic or over-read, and every event it accepts must survive a
// re-encode/re-decode round trip unchanged. (Byte-level canonicality is not
// asserted: the decoder tolerates non-minimal varints and unsorted
// attributes, which our encoder never emits.)
func FuzzDecodeBinary(f *testing.F) {
	f.Add(AppendBinary(nil, New("a", 1)))
	f.Add(AppendBinary(nil, New("gps-fix", 42).WithSource("taxi-7").
		WithAttr("x", Int(3)).WithAttr("s", String("v")).WithAttr("b", Bool(true))))
	whole := AppendBinary(nil, New("torn", 9).WithAttr("f", Float(2.5)))
	f.Add(whole[:len(whole)-1])
	f.Add([]byte{0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		e, n, err := DecodeBinary(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		enc := AppendBinary(nil, e)
		again, m, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("re-decode of %v failed: %v", e, err)
		}
		if m != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", m, len(enc))
		}
		if !e.Equal(again) || !e.Wall.Equal(again.Wall) {
			t.Fatalf("round trip changed event: %v vs %v", e, again)
		}
	})
}
