package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"patterndp/internal/cep"
	"patterndp/internal/event"
	"patterndp/internal/stream"
)

// ErrUnknownTarget is returned (wrapped, with the query name) by
// UnregisterTarget when no target query with that name is registered.
var ErrUnknownTarget = errors.New("core: unknown target query")

// Answer is one privacy-protected query answer delivered to a data consumer:
// the window it refers to and the released binary detection.
type Answer struct {
	// Query names the target query answered.
	Query string
	// WindowIndex is the position of the window in the stream.
	WindowIndex int
	// Window is the covered interval.
	Window stream.Window
	// Detected is the released (perturbed) binary answer.
	Detected bool
}

// PrivateEngine is the trusted CEP engine with privacy protection wired in
// (Fig. 2). In the setup phase, data subjects register private pattern types
// and a mechanism protecting them, and data consumers register target
// queries. In the service phase, raw events flow in, windows are formed, the
// mechanism perturbs the existence indicators of private-pattern elements,
// and target queries are answered from the released indicators.
//
// PrivateEngine is safe for concurrent registration and concurrent service
// calls: every ProcessWindows call derives its own RNG from the engine seed
// and a call counter, so randomness is never shared between goroutines.
// (All provided mechanisms keep their per-sequence state local to Run; a
// custom Mechanism must do the same to be served concurrently.)
type PrivateEngine struct {
	mu        sync.RWMutex
	mechanism Mechanism
	private   []PatternType
	targets   map[string]cep.Query
	// snap is an immutable, name-sorted snapshot of targets, rebuilt on
	// every registration change. The service phase reads the snapshot with
	// one RLock instead of copying and sorting the map per call, and a
	// whole ProcessWindows batch is answered against one consistent target
	// set even while registrations churn.
	snap  []cep.Query
	seed  int64
	calls atomic.Int64
}

// NewPrivateEngine builds an engine around the given mechanism and the
// private pattern types it protects. seed drives the mechanism's randomness.
func NewPrivateEngine(m Mechanism, private []PatternType, seed int64) (*PrivateEngine, error) {
	if m == nil {
		return nil, fmt.Errorf("core: nil mechanism")
	}
	if len(private) == 0 {
		return nil, fmt.Errorf("core: no private pattern types registered")
	}
	return &PrivateEngine{
		mechanism: m,
		private:   private,
		targets:   make(map[string]cep.Query),
		seed:      seed,
	}, nil
}

// MixSeed derives a decorrelated child seed from a parent seed and a step
// index with one splitmix64 round: a golden-ratio increment followed by an
// avalanche finalizer. The avalanche matters — with a purely linear mix,
// (seed, step) pairs whose sums coincide would collide, and two engines
// would draw identical noise for different releases.
func MixSeed(seed, step int64) int64 {
	z := uint64(seed) + uint64(step)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// splitmix64Source is a rand.Source64 whose state is the full 64-bit seed.
// The stock rand.NewSource reduces its seed mod 2^31−1, which would collapse
// MixSeed's decorrelated space to ~2^31 values and reintroduce identical
// noise sequences between service calls after ~2^15.5 of them (birthday
// bound). Construction is also O(1), versus the stock source's ~600-word
// reseeding.
type splitmix64Source struct{ state uint64 }

func (s *splitmix64Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmix64Source) Int63() int64    { return int64(s.Uint64() >> 1) }
func (s *splitmix64Source) Seed(seed int64) { s.state = uint64(seed) }

// callRNG returns a fresh RNG for one service call, seeded from the engine
// seed and the call index via MixSeed. Sequential callers therefore stay
// reproducible while concurrent callers each get independent randomness.
func (pe *PrivateEngine) callRNG() *rand.Rand {
	n := pe.calls.Add(1) // 1-based so call 0 does not reuse the raw seed
	return rand.New(&splitmix64Source{state: uint64(MixSeed(pe.seed, n))})
}

// RegisterTarget adds a data consumer's target query, replacing any
// registered query with the same name.
func (pe *PrivateEngine) RegisterTarget(q cep.Query) error {
	if err := q.Validate(); err != nil {
		return err
	}
	pe.mu.Lock()
	defer pe.mu.Unlock()
	pe.targets[q.Name] = q
	pe.rebuildSnapshot()
	return nil
}

// UnregisterTarget removes the named target query, e.g. when a data consumer
// cancels it. It returns ErrUnknownTarget (wrapped) when no such query is
// registered. Service calls already in flight keep answering against the
// snapshot they started with; later calls no longer see the query.
func (pe *PrivateEngine) UnregisterTarget(name string) error {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	if _, ok := pe.targets[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTarget, name)
	}
	delete(pe.targets, name)
	pe.rebuildSnapshot()
	return nil
}

// SetTargets replaces the whole registered target set in one step — the
// bulk form of RegisterTarget/UnregisterTarget for callers that maintain the
// desired set elsewhere (the streaming runtime's control plane does). The
// snapshot is rebuilt once, so applying an epoch with n queries costs one
// sort instead of n.
func (pe *PrivateEngine) SetTargets(qs []cep.Query) error {
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			return err
		}
	}
	pe.mu.Lock()
	defer pe.mu.Unlock()
	pe.targets = make(map[string]cep.Query, len(qs))
	for _, q := range qs {
		pe.targets[q.Name] = q
	}
	pe.rebuildSnapshot()
	return nil
}

// rebuildSnapshot rematerializes the sorted target snapshot; callers hold
// pe.mu.
func (pe *PrivateEngine) rebuildSnapshot() {
	out := make([]cep.Query, 0, len(pe.targets))
	for _, q := range pe.targets {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	pe.snap = out
}

// snapshot returns the current target snapshot. The returned slice is shared
// and must not be modified.
func (pe *PrivateEngine) snapshot() []cep.Query {
	pe.mu.RLock()
	defer pe.mu.RUnlock()
	return pe.snap
}

// Targets returns the registered target queries sorted by name.
func (pe *PrivateEngine) Targets() []cep.Query {
	snap := pe.snapshot()
	out := make([]cep.Query, len(snap))
	copy(out, snap)
	return out
}

// relevantTypes returns the union of private-pattern element types and
// target-query types, so indicators cover everything queries may reference.
// The caller supplies its Targets() snapshot so the streaming hot path
// (one ProcessWindows per closed window) builds the target list only once.
func (pe *PrivateEngine) relevantTypes(targets []cep.Query) []event.Type {
	seen := make(map[event.Type]bool)
	var out []event.Type
	add := func(ts []event.Type) {
		for _, t := range ts {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	for _, pt := range pe.private {
		add(pt.Elements)
	}
	for _, q := range targets {
		add(q.Pattern.Types())
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ProcessWindows runs the service phase over a batch of windows: perturb
// indicators with the mechanism, then answer every target query on the
// released indicators. Answers are ordered by window then query name.
func (pe *PrivateEngine) ProcessWindows(ws []stream.Window) ([]Answer, error) {
	targets := pe.snapshot()
	if len(targets) == 0 {
		return nil, fmt.Errorf("core: no target queries registered")
	}
	types := pe.relevantTypes(targets)
	iws := IndicatorWindows(ws, types)
	released := pe.mechanism.Run(pe.callRNG(), iws)
	if len(released) != len(ws) {
		return nil, fmt.Errorf("core: mechanism %q returned %d windows for %d inputs",
			pe.mechanism.Name(), len(released), len(ws))
	}
	answers := make([]Answer, 0, len(ws)*len(targets))
	for i, w := range ws {
		for _, q := range targets {
			answers = append(answers, Answer{
				Query:       q.Name,
				WindowIndex: i,
				Window:      w,
				Detected:    cep.EvalIndicators(q.Pattern, released[i]),
			})
		}
	}
	return answers, nil
}

// ProcessEvents cuts a time-ordered event slice into tumbling windows of the
// given width and runs ProcessWindows.
func (pe *PrivateEngine) ProcessEvents(evs []event.Event, width event.Timestamp) ([]Answer, error) {
	return pe.ProcessWindows(stream.WindowSlice(evs, width))
}

// Serve consumes an event stream, windows it, and emits protected answers as
// windows complete. It terminates when the input closes or done is closed.
// Note: each window is processed as its own batch, so stateful mechanisms
// see windows one at a time in order.
func (pe *PrivateEngine) Serve(done <-chan struct{}, in stream.Stream[event.Event], width event.Timestamp) stream.Stream[Answer] {
	out := make(chan Answer)
	go func() {
		defer close(out)
		idx := 0
		for w := range stream.Tumbling(done, in, width) {
			answers, err := pe.ProcessWindows([]stream.Window{w})
			if err != nil {
				return
			}
			for _, a := range answers {
				a.WindowIndex = idx
				select {
				case out <- a:
				case <-done:
					return
				}
			}
			idx++
		}
	}()
	return out
}
