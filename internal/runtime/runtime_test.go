package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"patterndp/internal/cep"
	"patterndp/internal/core"
	"patterndp/internal/dp"
	"patterndp/internal/event"
)

func testConfig(t *testing.T, shards int) Config {
	t.Helper()
	pt, err := core.NewPatternType("priv", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Shards:      shards,
		WindowWidth: 10,
		// Huge budget: perturbation is negligible, so released answers
		// must match ground truth and assertions stay deterministic.
		Mechanism: func(int) (core.Mechanism, error) {
			return core.NewUniformPPM(50, pt)
		},
		Private: []core.PatternType{pt},
		Targets: []cep.Query{
			{Name: "has-a", Pattern: cep.E("a"), Window: 10},
			{Name: "seq-ab", Pattern: cep.SeqTypes("a", "b"), Window: 10},
		},
		Seed: 7,
	}
}

// streamEvents builds one stream's events: an "a" in every window and a "b"
// in every even window, over the given number of windows.
func streamEvents(key string, windows int) []event.Event {
	var out []event.Event
	for w := 0; w < windows; w++ {
		base := event.Timestamp(w * 10)
		out = append(out, event.New("a", base+1).WithSource(key))
		if w%2 == 0 {
			out = append(out, event.New("b", base+5).WithSource(key))
		}
	}
	return out
}

// TestRuntimeMultiStreamOrdering is the acceptance scenario: >= 4 shards
// serving >= 4 concurrent streams under -race, with per-query answers
// arriving in window order per stream and matching ground truth.
func TestRuntimeMultiStreamOrdering(t *testing.T) {
	const streams, windows = 6, 20
	rt, err := New(testConfig(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	sub := rt.Subscribe("seq-ab")
	var got []Answer
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for a := range sub {
			got = append(got, a)
		}
	}()

	var producers sync.WaitGroup
	for i := 0; i < streams; i++ {
		producers.Add(1)
		go func(i int) {
			defer producers.Done()
			for _, e := range streamEvents(fmt.Sprintf("stream-%d", i), windows) {
				if err := rt.Ingest(e); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	producers.Wait()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	consumer.Wait()

	if len(got) != streams*windows {
		t.Fatalf("answers = %d, want %d", len(got), streams*windows)
	}
	next := make(map[string]int)
	for _, a := range got {
		if a.Query != "seq-ab" {
			t.Fatalf("subscription leaked query %q", a.Query)
		}
		if a.WindowIndex != next[a.Stream] {
			t.Fatalf("stream %s answer out of order: window %d, want %d", a.Stream, a.WindowIndex, next[a.Stream])
		}
		next[a.Stream]++
		if want := a.WindowIndex%2 == 0; a.Detected != want {
			t.Errorf("stream %s window %d detected=%t, want %t", a.Stream, a.WindowIndex, a.Detected, want)
		}
	}
	st := rt.Snapshot()
	tot := st.Totals()
	if want := int64(streams * (windows + windows/2)); tot.EventsIn != want {
		t.Errorf("EventsIn = %d, want %d", tot.EventsIn, want)
	}
	if want := int64(streams * windows); tot.WindowsClosed != want {
		t.Errorf("WindowsClosed = %d, want %d", tot.WindowsClosed, want)
	}
	// Two queries per window.
	if want := int64(2 * streams * windows); tot.AnswersEmitted != want {
		t.Errorf("AnswersEmitted = %d, want %d", tot.AnswersEmitted, want)
	}
	if tot.Streams != streams {
		t.Errorf("Streams = %d, want %d", tot.Streams, streams)
	}
	if b := st.Balance(); b.N != 4 {
		t.Errorf("Balance over %d shards, want 4", b.N)
	}
}

// TestRuntimeStreamAffinity verifies all of one stream's windows are served
// by a single shard (the precondition for per-stream order).
func TestRuntimeStreamAffinity(t *testing.T) {
	rt, err := New(testConfig(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	sub := rt.Subscribe("")
	shardOf := make(map[string]map[int]bool)
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for a := range sub {
			if shardOf[a.Stream] == nil {
				shardOf[a.Stream] = make(map[int]bool)
			}
			shardOf[a.Stream][a.Shard] = true
		}
	}()
	for i := 0; i < 16; i++ {
		for _, e := range streamEvents(fmt.Sprintf("s%d", i), 4) {
			if err := rt.Ingest(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	consumer.Wait()
	if len(shardOf) != 16 {
		t.Fatalf("streams seen = %d, want 16", len(shardOf))
	}
	for key, shards := range shardOf {
		if len(shards) != 1 {
			t.Errorf("stream %s served by %d shards", key, len(shards))
		}
	}
}

// TestRuntimeDropLateCounted feeds a straggler past its window and checks the
// dropped-late counter.
func TestRuntimeDropLateCounted(t *testing.T) {
	rt, err := New(testConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	sub := rt.Subscribe("")
	go func() {
		for range sub {
		}
	}()
	for _, e := range []event.Event{
		event.New("a", 1), event.New("a", 15), event.New("b", 2), // b@2 is late
	} {
		if err := rt.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	tot := rt.Snapshot().Totals()
	if tot.DroppedLate != 1 {
		t.Errorf("DroppedLate = %d, want 1", tot.DroppedLate)
	}
	if tot.EventsIn != 3 {
		t.Errorf("EventsIn = %d, want 3", tot.EventsIn)
	}
}

// TestRuntimeDropOldestBackpressure fills a tiny ingest buffer with serving
// stalled behind an unconsumed subscription, then checks evictions happened
// instead of blocking.
func TestRuntimeDropOldestBackpressure(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.Backpressure = DropOldest
	cfg.ShardBuffer = 4
	cfg.SubscriberBuffer = 0
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A subscriber that consumes only after Close lets answers stall the
	// shard, so the ingest channel must overflow and evict.
	sub := rt.Subscribe("")
	for i := 0; i < 64; i++ {
		if err := rt.Ingest(event.New("a", event.Timestamp(i))); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sub {
		}
	}()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	tot := rt.Snapshot().Totals()
	if tot.DroppedIngest == 0 {
		t.Error("DroppedIngest = 0, want evictions under a full ingest channel")
	}
	if tot.EventsIn+tot.DroppedIngest != 64 {
		t.Errorf("EventsIn %d + DroppedIngest %d != 64", tot.EventsIn, tot.DroppedIngest)
	}
}

// TestRuntimeClosedSemantics checks Ingest and Close after Close, and that
// subscriptions close.
func TestRuntimeClosedSemantics(t *testing.T) {
	rt, err := New(testConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	sub := rt.Subscribe("has-a")
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, open := <-sub; open {
		t.Error("subscription still open after Close")
	}
	if err := rt.Ingest(event.New("a", 1)); err != ErrClosed {
		t.Errorf("Ingest after Close = %v, want ErrClosed", err)
	}
	if err := rt.Close(); err != ErrClosed {
		t.Errorf("second Close = %v, want ErrClosed", err)
	}
	if _, open := <-rt.Subscribe("has-a"); open {
		t.Error("Subscribe after Close returned an open channel")
	}
}

// TestRuntimeRegisterTargetLive adds a query mid-serve and checks it starts
// answering on later windows.
func TestRuntimeRegisterTargetLive(t *testing.T) {
	rt, err := New(testConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	sub := rt.Subscribe("late-q")
	var n int
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for range sub {
			n++
		}
	}()
	if err := rt.RegisterTarget(cep.Query{Name: "late-q", Pattern: cep.E("b"), Window: 10}); err != nil {
		t.Fatal(err)
	}
	for _, e := range streamEvents("s", 5) {
		if err := rt.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	consumer.Wait()
	if n != 5 {
		t.Errorf("late-q answers = %d, want 5", n)
	}
}

// TestRuntimeDeterministicPerStream pins cross-run determinism: identical
// seeds and a single producer per stream must yield identical per-stream
// answer sequences regardless of shard count.
func TestRuntimeDeterministicPerStream(t *testing.T) {
	run := func(shards int) map[string][]bool {
		cfg := testConfig(t, shards)
		cfg.Mechanism = func(int) (core.Mechanism, error) {
			pt := cfg.Private[0]
			return core.NewUniformPPM(1, pt) // low budget: real perturbation
		}
		rt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sub := rt.Subscribe("has-a")
		out := make(map[string][]bool)
		var consumer sync.WaitGroup
		consumer.Add(1)
		go func() {
			defer consumer.Done()
			for a := range sub {
				out[a.Stream] = append(out[a.Stream], a.Detected)
			}
		}()
		// One stream only: its shard (hence seed) is stable for a fixed
		// shard count.
		for _, e := range streamEvents("solo", 30) {
			if err := rt.Ingest(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		consumer.Wait()
		return out
	}
	a, b := run(4), run(4)
	if len(a["solo"]) != 30 || len(b["solo"]) != 30 {
		t.Fatalf("answer counts = %d, %d, want 30", len(a["solo"]), len(b["solo"]))
	}
	for i := range a["solo"] {
		if a["solo"][i] != b["solo"][i] {
			t.Fatalf("window %d diverges between identically seeded runs", i)
		}
	}
}

// failingMechanism misbehaves (wrong window count) after a number of calls,
// standing in for a buggy custom Mechanism in production.
type failingMechanism struct{ calls, after int }

func (m *failingMechanism) Name() string             { return "failing" }
func (m *failingMechanism) TotalEpsilon() dp.Epsilon { return 1 }
func (m *failingMechanism) Run(rng *rand.Rand, wins []core.IndicatorWindow) []map[event.Type]bool {
	m.calls++
	if m.calls > m.after {
		return nil // wrong length: the engine must reject this
	}
	return core.Identity{}.Run(rng, wins)
}

// TestRuntimeShardFailureSurfaces is the regression test for silent shard
// death: after an engine error the failure must show up in Ingest (not just
// at Close), in the snapshot, and in Close's returned error.
func TestRuntimeShardFailureSurfaces(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.Mechanism = func(int) (core.Mechanism, error) {
		return &failingMechanism{after: 1}, nil
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub := rt.Subscribe("")
	go func() {
		for range sub {
		}
	}()
	// Window 0 serves fine; window 1 triggers the failure. Keep ingesting
	// until the failure propagates to Ingest.
	var ingestErr error
	for i := 0; i < 100000 && ingestErr == nil; i++ {
		ingestErr = rt.Ingest(event.New("a", event.Timestamp(i)))
	}
	if !errors.Is(ingestErr, ErrShardFailed) {
		t.Fatalf("Ingest after shard failure = %v, want ErrShardFailed", ingestErr)
	}
	tot := rt.Snapshot().Totals()
	if !tot.Failed {
		t.Error("Snapshot does not report the failed shard")
	}
	if err := rt.Close(); err == nil || errors.Is(err, ErrClosed) {
		t.Errorf("Close = %v, want the underlying engine error", err)
	}
}

// TestRuntimeIdleStreamEviction is the regression test for unbounded
// per-stream state under key churn: with EvictAfter set, an idle stream's
// trailing window must be flushed and answered before Close, its state
// freed, and a returning event must start a fresh feed.
func TestRuntimeIdleStreamEviction(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.EvictAfter = 8
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub := rt.Subscribe("has-a")
	var mu sync.Mutex
	byStream := make(map[string]int)
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for a := range sub {
			mu.Lock()
			byStream[a.Stream]++
			mu.Unlock()
		}
	}()
	// One event on the idle stream, then enough traffic on another stream
	// to trigger a sweep that evicts it.
	if err := rt.Ingest(event.New("a", 1).WithSource("idle")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := rt.Ingest(event.New("a", event.Timestamp(i)).WithSource("busy")); err != nil {
			t.Fatal(err)
		}
	}
	// The idle stream's trailing window must be answered without Close.
	deadline := 0
	for {
		mu.Lock()
		n := byStream["idle"]
		mu.Unlock()
		if n > 0 {
			break
		}
		if deadline++; deadline > 2000 {
			t.Fatal("idle stream's trailing window never flushed by eviction")
		}
		time.Sleep(time.Millisecond) // let the shard goroutine serve
		// Keep the busy stream moving so sweeps keep firing.
		if err := rt.Ingest(event.New("a", 500).WithSource("busy")); err != nil {
			t.Fatal(err)
		}
	}
	// A returning event starts a fresh feed (not dropped as late).
	if err := rt.Ingest(event.New("a", 2).WithSource("idle")); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	consumer.Wait()
	tot := rt.Snapshot().Totals()
	if tot.StreamsEvicted == 0 {
		t.Error("StreamsEvicted = 0, want at least 1")
	}
	if tot.Streams < 3 {
		t.Errorf("Streams = %d, want >= 3 (idle opened twice)", tot.Streams)
	}
	if tot.DroppedLate != 0 {
		t.Errorf("DroppedLate = %d: returning stream treated as late", tot.DroppedLate)
	}
	if byStream["idle"] < 2 {
		t.Errorf("idle stream answers = %d, want >= 2 (evicted flush + fresh feed)", byStream["idle"])
	}
}

func TestRuntimeConfigValidation(t *testing.T) {
	base := testConfig(t, 1)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no window width", func(c *Config) { c.WindowWidth = 0 }},
		{"nil mechanism", func(c *Config) { c.Mechanism = nil }},
		{"no private", func(c *Config) { c.Private = nil }},
		{"no targets", func(c *Config) { c.Targets = nil }},
		{"negative lateness", func(c *Config) { c.AllowedLateness = -1 }},
		{"negative horizon", func(c *Config) { c.Horizon = -1 }},
		{"negative evict", func(c *Config) { c.EvictAfter = -1 }},
		{"negative shards", func(c *Config) { c.Shards = -2 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestHashSharderStable(t *testing.T) {
	s := HashSharder{}
	for _, key := range []string{"", "a", "stream-42", "taxi-007"} {
		i := s.Shard(key, 8)
		if i < 0 || i >= 8 {
			t.Fatalf("Shard(%q) = %d out of range", key, i)
		}
		if j := s.Shard(key, 8); j != i {
			t.Errorf("Shard(%q) unstable: %d then %d", key, i, j)
		}
	}
}
