package cep

import (
	"strings"
	"testing"

	"patterndp/internal/event"
	"patterndp/internal/stream"
)

func win(evs ...event.Event) stream.Window {
	if len(evs) == 0 {
		return stream.Window{Start: 0, End: 100}
	}
	return stream.Window{Start: 0, End: evs[len(evs)-1].Time + 1, Events: evs}
}

func TestAtomMatches(t *testing.T) {
	a := E("go")
	if !a.Matches(event.New("go", 1)) || a.Matches(event.New("stop", 1)) {
		t.Error("atom type matching broken")
	}
	p := EWhere("go", func(e event.Event) bool {
		v, ok := e.Attr("speed")
		if !ok {
			return false
		}
		f, _ := v.AsFloat()
		return f > 10
	})
	fast := event.New("go", 1).WithAttr("speed", Float(30))
	slow := event.New("go", 2).WithAttr("speed", Float(3))
	if !p.Matches(fast) || p.Matches(slow) {
		t.Error("predicate matching broken")
	}
}

// Float is re-exported for test brevity.
func Float(f float64) event.Value { return event.Float(f) }

func TestExprTypesDedup(t *testing.T) {
	e := SeqOf(E("a"), AndOf(E("b"), E("a")), OrOf(E("c")))
	got := e.Types()
	want := []event.Type{"a", "b", "c"}
	if len(got) != 3 {
		t.Fatalf("Types = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Types = %v, want %v", got, want)
		}
	}
}

func TestExprString(t *testing.T) {
	e := SeqOf(E("a"), NegOf(AndOf(E("b"), E("c"))))
	s := e.String()
	if !strings.Contains(s, "SEQ(") || !strings.Contains(s, "NEG(AND(b, c))") {
		t.Errorf("String = %q", s)
	}
	al := &Atom{Type: "x", Alias: "first"}
	if al.String() != "x AS first" {
		t.Errorf("alias String = %q", al.String())
	}
}

func TestValidate(t *testing.T) {
	bad := []Query{
		{Name: "", Pattern: E("a"), Window: 1},
		{Name: "q", Pattern: nil, Window: 1},
		{Name: "q", Pattern: E("a"), Window: 0},
		{Name: "q", Pattern: SeqOf(), Window: 1},
		{Name: "q", Pattern: SeqOf(nil), Window: 1},
		{Name: "q", Pattern: NegOf(nil), Window: 1},
		{Name: "q", Pattern: E(""), Window: 1},
		{Name: "q", Pattern: AndOf(), Window: 1},
		{Name: "q", Pattern: OrOf(), Window: 1},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	good := Query{Name: "q", Pattern: SeqTypes("a", "b"), Window: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
}

func TestEvalWindowAtomSeq(t *testing.T) {
	w := win(event.New("a", 1), event.New("x", 2), event.New("b", 3))
	if ok, _ := EvalWindow(E("a"), w); !ok {
		t.Error("atom should match")
	}
	if ok, _ := EvalWindow(E("z"), w); ok {
		t.Error("absent atom matched")
	}
	ok, witness := EvalWindow(SeqTypes("a", "b"), w)
	if !ok || len(witness) != 2 || witness[0].Type != "a" || witness[1].Type != "b" {
		t.Errorf("seq witness = %v", witness)
	}
	// Order matters: b then a must fail.
	if ok, _ := EvalWindow(SeqTypes("b", "a"), w); ok {
		t.Error("reversed sequence matched")
	}
}

func TestEvalWindowSeqStrictOrder(t *testing.T) {
	// Same timestamp does not satisfy "strictly after".
	w := win(event.New("a", 5), event.New("b", 5))
	if ok, _ := EvalWindow(SeqTypes("a", "b"), w); ok {
		t.Error("simultaneous events satisfied a SEQ")
	}
}

func TestEvalWindowSeqBacktracking(t *testing.T) {
	// a@1 b@2 a@3 c@4 — SEQ(a, b, c)? witness must be a@1 b@2 c@4,
	// requiring the evaluator to not greedily bind the last a.
	w := win(event.New("a", 1), event.New("b", 2), event.New("a", 3), event.New("c", 4))
	ok, witness := EvalWindow(SeqTypes("a", "b", "c"), w)
	if !ok {
		t.Fatal("should match")
	}
	if witness[0].Time != 1 || witness[1].Time != 2 || witness[2].Time != 4 {
		t.Errorf("witness times = %v", witness)
	}
	// SEQ(b, a): b@2 then a@3 — requires trying later a candidates.
	ok, _ = EvalWindow(SeqTypes("b", "a"), w)
	if !ok {
		t.Error("SEQ(b,a) should match via a@3")
	}
}

func TestEvalWindowAndOrNeg(t *testing.T) {
	w := win(event.New("a", 1), event.New("b", 2))
	if ok, _ := EvalWindow(AndOf(E("b"), E("a")), w); !ok {
		t.Error("AND should be order-insensitive")
	}
	if ok, _ := EvalWindow(AndOf(E("a"), E("z")), w); ok {
		t.Error("AND with absent part matched")
	}
	if ok, _ := EvalWindow(OrOf(E("z"), E("b")), w); !ok {
		t.Error("OR should match via b")
	}
	if ok, _ := EvalWindow(OrOf(E("z"), E("y")), w); ok {
		t.Error("OR with no parts present matched")
	}
	if ok, _ := EvalWindow(NegOf(E("z")), w); !ok {
		t.Error("NEG of absent should match")
	}
	if ok, _ := EvalWindow(NegOf(E("a")), w); ok {
		t.Error("NEG of present matched")
	}
}

func TestEvalWindowCompositeInsideSeq(t *testing.T) {
	// SEQ(AND(a,b), c): both a and b must occur before c... (the composite
	// head's witness end bounds the tail).
	w := win(event.New("a", 1), event.New("b", 2), event.New("c", 3))
	if ok, _ := EvalWindow(SeqOf(AndOf(E("a"), E("b")), E("c")), w); !ok {
		t.Error("SEQ(AND(a,b), c) should match")
	}
	w2 := win(event.New("a", 1), event.New("c", 2), event.New("b", 3))
	if ok, _ := EvalWindow(SeqOf(AndOf(E("a"), E("b")), E("c")), w2); ok {
		t.Error("c occurs before AND completes; should not match")
	}
}

func TestEvalIndicators(t *testing.T) {
	present := map[event.Type]bool{"a": true, "b": false, "c": true}
	if !EvalIndicators(E("a"), present) || EvalIndicators(E("b"), present) {
		t.Error("atom indicators broken")
	}
	if EvalIndicators(SeqTypes("a", "b"), present) {
		t.Error("seq with missing element matched")
	}
	if !EvalIndicators(SeqTypes("a", "c"), present) {
		t.Error("seq degrades to all-present over indicators")
	}
	if !EvalIndicators(OrOf(E("b"), E("c")), present) {
		t.Error("or over indicators broken")
	}
	if !EvalIndicators(NegOf(E("b")), present) {
		t.Error("neg over indicators broken")
	}
	if !EvalIndicators(AndOf(E("a"), E("c")), present) {
		t.Error("and over indicators broken")
	}
}

func TestIndicatorsExtraction(t *testing.T) {
	w := win(event.New("a", 1), event.New("b", 2))
	ind := Indicators(w, []event.Type{"a", "b", "z"})
	if !ind["a"] || !ind["b"] || ind["z"] {
		t.Errorf("Indicators = %v", ind)
	}
	if len(ind) != 3 {
		t.Errorf("Indicators should cover requested types only, got %v", ind)
	}
}

func TestCompileSeqErrors(t *testing.T) {
	if _, err := CompileSeq("q", nil, 0); err == nil {
		t.Error("nil seq accepted")
	}
	if _, err := CompileSeq("q", SeqOf(), 0); err == nil {
		t.Error("empty seq accepted")
	}
	if _, err := CompileSeq("q", SeqOf(AndOf(E("a"), E("b"))), 0); err == nil {
		t.Error("composite part accepted")
	}
	if _, err := CompileSeq("q", SeqTypes("a"), -1); err == nil {
		t.Error("negative window accepted")
	}
}

func TestNFASingleAtom(t *testing.T) {
	m, err := CompileSeq("q", SeqTypes("a"), 0)
	if err != nil {
		t.Fatal(err)
	}
	got := m.FeedAll([]event.Event{event.New("a", 1), event.New("b", 2), event.New("a", 3)})
	if len(got) != 2 {
		t.Errorf("detections = %d, want 2", len(got))
	}
}

func TestNFASkipTillAnyMatch(t *testing.T) {
	m, err := CompileSeq("q", SeqTypes("a", "b"), 0)
	if err != nil {
		t.Fatal(err)
	}
	// a@1 a@2 b@3 → two matches: (a1,b3) and (a2,b3).
	got := m.FeedAll([]event.Event{event.New("a", 1), event.New("a", 2), event.New("b", 3)})
	if len(got) != 2 {
		t.Fatalf("detections = %d, want 2 (skip-till-any-match)", len(got))
	}
	for _, p := range got {
		if p.Name != "q" || p.Len() != 2 {
			t.Errorf("bad detection %v", p)
		}
	}
}

func TestNFAWindowExpiry(t *testing.T) {
	m, err := CompileSeq("q", SeqTypes("a", "b"), 5)
	if err != nil {
		t.Fatal(err)
	}
	got := m.FeedAll([]event.Event{event.New("a", 1), event.New("b", 10)})
	if len(got) != 0 {
		t.Errorf("expired run still matched: %v", got)
	}
	got = m.FeedAll([]event.Event{event.New("a", 20), event.New("b", 24)})
	if len(got) != 1 {
		t.Errorf("in-window match missed: %v", got)
	}
}

func TestNFAStrictTemporalOrder(t *testing.T) {
	m, _ := CompileSeq("q", SeqTypes("a", "b"), 0)
	got := m.FeedAll([]event.Event{event.New("a", 1), event.New("b", 1)})
	if len(got) != 0 {
		t.Error("same-timestamp pair matched a SEQ")
	}
}

func TestNFAMaxRuns(t *testing.T) {
	m, _ := CompileSeq("q", SeqTypes("a", "b"), 0, WithMaxRuns(2))
	for i := 0; i < 10; i++ {
		m.Feed(event.New("a", event.Timestamp(i)))
	}
	if m.ActiveRuns() != 2 {
		t.Errorf("ActiveRuns = %d, want 2", m.ActiveRuns())
	}
	if m.Dropped() != 8 {
		t.Errorf("Dropped = %d, want 8", m.Dropped())
	}
	got := m.Feed(event.New("b", 100))
	if len(got) != 2 {
		t.Errorf("bounded matcher detections = %d, want 2", len(got))
	}
}

func TestNFAReset(t *testing.T) {
	m, _ := CompileSeq("q", SeqTypes("a", "b"), 0)
	m.Feed(event.New("a", 1))
	m.Reset()
	if m.ActiveRuns() != 0 {
		t.Error("Reset left runs")
	}
	if got := m.Feed(event.New("b", 2)); len(got) != 0 {
		t.Error("match completed across Reset")
	}
}

func TestNFAAccessors(t *testing.T) {
	m, _ := CompileSeq("q", SeqTypes("a", "b", "c"), 7)
	if m.Name() != "q" || m.Len() != 3 {
		t.Error("accessors broken")
	}
}

func TestEngineRegisterQuery(t *testing.T) {
	g := NewEngine()
	if err := g.Register(Query{Name: "q1", Pattern: E("a"), Window: 10}); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(Query{Name: "", Pattern: E("a"), Window: 10}); err == nil {
		t.Error("invalid query accepted")
	}
	if _, ok := g.Query("q1"); !ok {
		t.Error("q1 not found")
	}
	if _, ok := g.Query("zzz"); ok {
		t.Error("phantom query found")
	}
	g.Register(Query{Name: "q0", Pattern: E("b"), Window: 10})
	qs := g.Queries()
	if len(qs) != 2 || qs[0].Name != "q0" {
		t.Errorf("Queries = %v", qs)
	}
	g.Unregister("q0")
	if len(g.Queries()) != 1 {
		t.Error("Unregister failed")
	}
	g.Unregister("never-registered") // must not panic
}

func TestEngineEvaluateWindow(t *testing.T) {
	g := NewEngine()
	g.Register(Query{Name: "hit", Pattern: SeqTypes("a", "b"), Window: 10})
	g.Register(Query{Name: "miss", Pattern: E("z"), Window: 10})
	ds := g.EvaluateWindow(win(event.New("a", 1), event.New("b", 2)))
	if len(ds) != 2 {
		t.Fatalf("detections = %d", len(ds))
	}
	if !ds[0].Detected || ds[0].Query != "hit" {
		t.Errorf("hit not detected: %+v", ds[0])
	}
	if ds[0].Witness.Len() != 2 {
		t.Errorf("witness = %v", ds[0].Witness)
	}
	if ds[1].Detected {
		t.Errorf("miss detected: %+v", ds[1])
	}
}

func TestEngineRun(t *testing.T) {
	g := NewEngine()
	g.Register(Query{Name: "q", Pattern: SeqTypes("a", "b"), Window: 10})
	done := make(chan struct{})
	defer close(done)
	in := stream.FromSlice([]event.Event{
		event.New("a", 1), event.New("b", 2), // window [0,10): detected
		event.New("a", 11), // window [10,20): not detected
	})
	ds := stream.Collect(g.Run(done, in, 10))
	if len(ds) != 2 {
		t.Fatalf("detections = %d, want 2", len(ds))
	}
	if !ds[0].Detected || ds[1].Detected {
		t.Errorf("detection flags = %v %v", ds[0].Detected, ds[1].Detected)
	}
}

func TestDetectSeq(t *testing.T) {
	evs := []event.Event{event.New("a", 1), event.New("b", 3), event.New("a", 4), event.New("b", 5)}
	got, err := DetectSeq("q", SeqTypes("a", "b"), 0, evs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 { // (1,3) (1,5) (4,5)
		t.Errorf("instances = %d, want 3", len(got))
	}
	if _, err := DetectSeq("q", SeqOf(OrOf(E("a"))), 0, evs); err == nil {
		t.Error("composite DetectSeq accepted")
	}
}

func TestNFAvsWindowEvaluatorAgreement(t *testing.T) {
	// Property: for a tumbling window, the NFA (reset per window) detects at
	// least one instance iff the window evaluator reports the seq present.
	evsets := [][]event.Event{
		{event.New("a", 1), event.New("b", 2), event.New("c", 3)},
		{event.New("b", 1), event.New("a", 2), event.New("c", 3)},
		{event.New("a", 1), event.New("c", 2)},
		{event.New("c", 1), event.New("b", 2), event.New("a", 3)},
		{event.New("a", 1), event.New("a", 2), event.New("b", 3), event.New("c", 9)},
	}
	seq := SeqTypes("a", "b", "c")
	for i, evs := range evsets {
		w := win(evs...)
		evalOK, _ := EvalWindow(seq, w)
		m, _ := CompileSeq("q", seq, 0)
		nfaOK := len(m.FeedAll(evs)) > 0
		if evalOK != nfaOK {
			t.Errorf("case %d: evaluator=%t nfa=%t", i, evalOK, nfaOK)
		}
	}
}
