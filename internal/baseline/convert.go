// Package baseline implements the non-pattern-level PPMs the paper compares
// against (Section VI-A.2): the w-event DP mechanisms Budget Distribution
// (BD) and Budget Absorption (BA) of Kellaris et al. (VLDB 2014), and the
// landmark-privacy adaptive allocation of Katsomallos et al. (CODASPY 2022),
// together with the budget conversion that expresses their guarantees in the
// paper's pattern-level terms.
//
// These mechanisms perturb the released counts of every relevant event type
// at every timestamp — they are stream-level, not pattern-level — which is
// exactly the data-quality cost the paper's contribution avoids.
package baseline

import (
	"fmt"

	"patterndp/internal/core"
	"patterndp/internal/dp"
	"patterndp/internal/event"
)

// ConvertToWEvent converts a pattern-level budget into the w-event budget
// that spends (approximately) the given pattern-level budget on the elements
// of one private pattern instance.
//
// Rationale (Section VI-A.2): a w-event mechanism spreads its budget ε_w
// over the w timestamps of any sliding window, nominally ε_w / w per
// timestamp. One private pattern instance of length m occupies m of those
// timestamps, so the budget "related to" the pattern aggregates to
// m · ε_w / w. Solving m · ε_w / w = ε_pattern gives
//
//	ε_w = ε_pattern · w / m.
//
// Depending on w and m this conversion can increase or decrease the budget
// relative to ε_pattern, as the paper notes.
func ConvertToWEvent(patternEps dp.Epsilon, w, m int) (dp.Epsilon, error) {
	if !patternEps.Valid() {
		return 0, fmt.Errorf("baseline: invalid pattern-level budget %v", patternEps)
	}
	if w <= 0 || m <= 0 {
		return 0, fmt.Errorf("baseline: w=%d and m=%d must be positive", w, m)
	}
	return patternEps * dp.Epsilon(w) / dp.Epsilon(m), nil
}

// ConvertToLandmark converts a pattern-level budget into the per-landmark
// budget of a landmark-privacy mechanism. A private pattern instance spans
// (up to) its m element events, each at a landmark timestamp, so the budget
// related to the pattern aggregates to m · ε_landmark; matching it to
// ε_pattern gives ε_landmark = ε_pattern / m.
func ConvertToLandmark(patternEps dp.Epsilon, m int) (dp.Epsilon, error) {
	if !patternEps.Valid() {
		return 0, fmt.Errorf("baseline: invalid pattern-level budget %v", patternEps)
	}
	if m <= 0 {
		return 0, fmt.Errorf("baseline: m=%d must be positive", m)
	}
	return patternEps / dp.Epsilon(m), nil
}

// maxPatternLen returns the largest element count across the private
// pattern types; conversions use it as m.
func maxPatternLen(private []core.PatternType) int {
	m := 0
	for _, pt := range private {
		if pt.Len() > m {
			m = pt.Len()
		}
	}
	return m
}

// privateTypeSet returns the union of all private-pattern element types.
func privateTypeSet(private []core.PatternType) map[event.Type]bool {
	out := make(map[event.Type]bool)
	for _, pt := range private {
		for _, t := range pt.Elements {
			out[t] = true
		}
	}
	return out
}

// indicatorFromCount thresholds a (noisy) count into an existence
// indicator. The threshold 0.5 is the midpoint between "absent" (0) and
// "present at least once" (≥1).
func indicatorFromCount(c float64) bool { return c >= 0.5 }
