package durable

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
)

// Session spill: parked session cores written beside the WAL on drain so a
// client's Resume survives the process, not just the connection. The file
// reuses the checkpoint framing (magic | len u32 | crc u32 | JSON) and the
// same tmp+fsync+rename discipline; replay-ring answers are carried as
// opaque wire-encoded bytes so this package stays below internal/wire in
// the import graph.
//
// The spill is a snapshot of one drain, not a log: the next process reads
// it once, adopts the sessions, and removes it. A torn or CRC-corrupt spill
// is reported as an error — the caller decides whether lost sessions abort
// a takeover (they never lose spend; clients fall back to a fresh handshake
// with an explicit unknown-extent gap).

const (
	sessMagic = "PPMSESS\n"
	// SessionSpillFile is the spill's file name inside a durable-state
	// directory.
	SessionSpillFile = "sessions.spill"
)

// SessionSpill is every parked session core exported at drain.
type SessionSpill struct {
	Sessions []SessionRecord `json:"sessions"`
}

// SessionRecord is one parked session: its resume token, owning tenant, and
// per-subscription replay state.
type SessionRecord struct {
	// Token is the session token a reconnecting client presents in Resume.
	Token string `json:"token"`
	// Tenant is the authenticated tenant the session belongs to.
	Tenant string `json:"tenant"`
	// ParkedAtMillis orders evictions across a restart (oldest first).
	ParkedAtMillis int64 `json:"parked_at_millis"`
	// Subs is the session's subscription set.
	Subs []SessionSub `json:"subs,omitempty"`
}

// SessionSub is one subscription's replay state.
type SessionSub struct {
	// ID is the client-chosen subscription id.
	ID uint64 `json:"id"`
	// Query is the resolved runtime query name (namespaced for tenant
	// registrations), so the adopting process re-subscribes to exactly the
	// stream of answers the old process was bridging.
	Query string `json:"query"`
	// Head is the highest answer seq pushed into the replay ring; Cursor is
	// the last seq delivered to the client.
	Head   uint64 `json:"head"`
	Cursor uint64 `json:"cursor"`
	// RingStart is the seq of Ring[0]; Ring holds the retained undelivered
	// answers for seqs [RingStart, Head], wire-encoded (internal/wire
	// Answer payloads), oldest first.
	RingStart uint64   `json:"ring_start,omitempty"`
	Ring      [][]byte `json:"ring,omitempty"`
}

// WriteSessions persists sp as dir's session spill, replacing any previous
// spill.
func WriteSessions(dir string, sp *SessionSpill) error {
	payload, err := json.Marshal(sp)
	if err != nil {
		return fmt.Errorf("durable: marshal session spill: %w", err)
	}
	var hdr [16]byte
	copy(hdr[:], sessMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:], crc32.ChecksumIEEE(payload))
	final := filepath.Join(dir, SessionSpillFile)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: session spill: %w", err)
	}
	if _, err = f.Write(hdr[:]); err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("durable: session spill: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("durable: session spill: %w", err)
	}
	syncDir(dir)
	return nil
}

// ReadSessions loads dir's session spill. A missing spill is (nil, nil) —
// the common cold-start case; a torn or corrupt spill is an error.
func ReadSessions(dir string) (*SessionSpill, error) {
	data, err := os.ReadFile(filepath.Join(dir, SessionSpillFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(data) < 16 || string(data[:8]) != sessMagic {
		return nil, fmt.Errorf("durable: %s: not a session spill", SessionSpillFile)
	}
	length := binary.LittleEndian.Uint32(data[8:])
	crc := binary.LittleEndian.Uint32(data[12:])
	if int(length) != len(data)-16 {
		return nil, fmt.Errorf("durable: %s: torn session spill", SessionSpillFile)
	}
	payload := data[16:]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("durable: %s: session spill CRC mismatch", SessionSpillFile)
	}
	var sp SessionSpill
	if err := json.Unmarshal(payload, &sp); err != nil {
		return nil, fmt.Errorf("durable: %s: %w", SessionSpillFile, err)
	}
	return &sp, nil
}

// RemoveSessions deletes dir's session spill once its sessions have been
// adopted (missing is fine).
func RemoveSessions(dir string) error {
	err := os.Remove(filepath.Join(dir, SessionSpillFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}
