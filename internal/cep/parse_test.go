package cep

import (
	"strings"
	"testing"

	"patterndp/internal/event"
	"patterndp/internal/stream"
)

func TestParseAtom(t *testing.T) {
	e, w, err := Parse("door-open")
	if err != nil {
		t.Fatal(err)
	}
	if w != 0 {
		t.Errorf("window = %d", w)
	}
	a, ok := e.(*Atom)
	if !ok || a.Type != "door-open" {
		t.Errorf("parsed %T %v", e, e)
	}
}

func TestParseSeqWithin(t *testing.T) {
	e, w, err := Parse("SEQ(enter-taxi, near-hospital) WITHIN 10")
	if err != nil {
		t.Fatal(err)
	}
	if w != 10 {
		t.Errorf("window = %d", w)
	}
	s, ok := e.(*Seq)
	if !ok || len(s.Parts) != 2 {
		t.Fatalf("parsed %T %v", e, e)
	}
	if s.String() != "SEQ(enter-taxi, near-hospital)" {
		t.Errorf("String = %q", s.String())
	}
}

func TestParseNested(t *testing.T) {
	e, _, err := Parse("AND(a, OR(b, NEG(c)), SEQ(d, e))")
	if err != nil {
		t.Fatal(err)
	}
	want := "AND(a, OR(b, NEG(c)), SEQ(d, e))"
	if e.String() != want {
		t.Errorf("String = %q, want %q", e.String(), want)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	e, _, err := Parse("seq(a, and(b, c))")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*Seq); !ok {
		t.Errorf("parsed %T", e)
	}
}

func TestParseTimes(t *testing.T) {
	e, _, err := Parse("TIMES(retry, 3)")
	if err != nil {
		t.Fatal(err)
	}
	ts, ok := e.(*Times)
	if !ok || ts.Min != 3 || ts.Max != 0 {
		t.Fatalf("parsed %v", e)
	}
	if ts.String() != "TIMES(retry, 3)" {
		t.Errorf("String = %q", ts.String())
	}
	e2, _, err := Parse("TIMES(retry, 1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	ts2 := e2.(*Times)
	if ts2.Min != 1 || ts2.Max != 2 {
		t.Errorf("bounds = %d..%d", ts2.Min, ts2.Max)
	}
	if ts2.String() != "TIMES(retry, 1, 2)" {
		t.Errorf("String = %q", ts2.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SEQ()",
		"SEQ(a",
		"SEQ(a,)",
		"SEQ(a) WITHIN",
		"SEQ(a) WITHIN x",
		"SEQ(a) WITHIN 0",
		"SEQ(a) trailing",
		"NEG(a, b)",
		"NEG()",
		"TIMES(a)",
		"TIMES(a, x)",
		"TIMES(a, 0)",
		"TIMES(a, 3, 2)",
		"TIMES(a, 1, x)",
		"unknown(a)",
		"WITHIN 5",
		"SEQ(a))",
		"@bad",
		"(a)",
	}
	for _, in := range bad {
		if _, _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

func TestParseIdentifierCharset(t *testing.T) {
	e, _, err := Parse("cell-3-7")
	if err != nil {
		t.Fatal(err)
	}
	if e.(*Atom).Type != "cell-3-7" {
		t.Errorf("type = %v", e.(*Atom).Type)
	}
	e2, _, err := Parse("ns:reading_1.5x")
	if err != nil {
		t.Fatal(err)
	}
	if e2.(*Atom).Type != "ns:reading_1.5x" {
		t.Errorf("type = %v", e2.(*Atom).Type)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("SEQ(")
}

func TestParseQuery(t *testing.T) {
	q, err := ParseQuery("jam", "SEQ(a, b) WITHIN 20", 5)
	if err != nil {
		t.Fatal(err)
	}
	if q.Window != 20 || q.Name != "jam" {
		t.Errorf("query = %+v", q)
	}
	q2, err := ParseQuery("jam", "SEQ(a, b)", 5)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Window != 5 {
		t.Errorf("default window = %d", q2.Window)
	}
	if _, err := ParseQuery("bad", "SEQ(", 5); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := ParseQuery("", "a", 5); err == nil {
		t.Error("empty name accepted")
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	inputs := []string{
		"SEQ(a, b, c)",
		"AND(a, NEG(b))",
		"OR(SEQ(a, b), c)",
	}
	for _, in := range inputs {
		e := MustParse(in)
		back := MustParse(e.String())
		if back.String() != e.String() {
			t.Errorf("round trip %q -> %q -> %q", in, e.String(), back.String())
		}
	}
}

func TestTimesValidation(t *testing.T) {
	bad := []*Times{
		{Inner: nil, Min: 1},
		{Inner: E("a"), Min: 0},
		{Inner: E("a"), Min: 3, Max: 2},
		{Inner: E(""), Min: 1},
	}
	for i, ts := range bad {
		if err := ts.validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	good := &Times{Inner: E("a"), Min: 2, Max: 0}
	if err := good.validate(); err != nil {
		t.Error(err)
	}
}

func TestTimesEvalWindow(t *testing.T) {
	w := stream.Window{Start: 0, End: 100, Events: []event.Event{
		event.New("r", 1), event.New("r", 2), event.New("r", 3),
	}}
	if ok, _ := EvalWindow(TimesOf(E("r"), 3, 0), w); !ok {
		t.Error("3 occurrences should satisfy TIMES(r, 3)")
	}
	if ok, _ := EvalWindow(TimesOf(E("r"), 4, 0), w); ok {
		t.Error("3 occurrences should not satisfy TIMES(r, 4)")
	}
	if ok, _ := EvalWindow(TimesOf(E("r"), 1, 2), w); ok {
		t.Error("3 occurrences exceed TIMES(r, 1, 2)")
	}
	ok, witness := EvalWindow(TimesOf(E("r"), 2, 3), w)
	if !ok || len(witness) != 3 {
		t.Errorf("witness = %v", witness)
	}
}

func TestTimesOfSequences(t *testing.T) {
	// Two disjoint (a, b) pairs.
	w := stream.Window{Start: 0, End: 100, Events: []event.Event{
		event.New("a", 1), event.New("b", 2),
		event.New("a", 3), event.New("b", 4),
	}}
	if ok, _ := EvalWindow(TimesOf(SeqTypes("a", "b"), 2, 0), w); !ok {
		t.Error("two disjoint seq matches expected")
	}
	if ok, _ := EvalWindow(TimesOf(SeqTypes("a", "b"), 3, 0), w); ok {
		t.Error("only two disjoint matches exist")
	}
}

func TestTimesEvalIndicators(t *testing.T) {
	present := map[event.Type]bool{"r": true}
	if !EvalIndicators(TimesOf(E("r"), 1, 0), present) {
		t.Error("TIMES min=1 over indicators should reduce to presence")
	}
	if EvalIndicators(TimesOf(E("r"), 2, 0), present) {
		t.Error("TIMES min>1 cannot be witnessed by an existence bit")
	}
}

func TestTimesZeroWidthWitnessTerminates(t *testing.T) {
	// NEG matches with an empty witness; counting must not loop forever.
	w := stream.Window{Start: 0, End: 10}
	ok, _ := EvalWindow(TimesOf(NegOf(E("x")), 1, 0), w)
	if !ok {
		t.Error("NEG(x) holds once in an empty window")
	}
}

func TestTimesTypesAndQueryIntegration(t *testing.T) {
	ts := TimesOf(SeqTypes("a", "b"), 2, 0)
	got := ts.Types()
	if len(got) != 2 {
		t.Errorf("Types = %v", got)
	}
	q := Query{Name: "q", Pattern: ts, Window: 10}
	if err := q.Validate(); err != nil {
		t.Errorf("TIMES query invalid: %v", err)
	}
	g := NewEngine()
	if err := g.Register(q); err != nil {
		t.Fatal(err)
	}
	ds := g.EvaluateWindow(stream.Window{Start: 0, End: 10, Events: []event.Event{
		event.New("a", 1), event.New("b", 2), event.New("a", 3), event.New("b", 4),
	}})
	if !ds[0].Detected {
		t.Error("engine missed TIMES detection")
	}
}

func TestParsedExprEvaluates(t *testing.T) {
	e := MustParse("SEQ(a, OR(b, c))")
	w := stream.Window{Start: 0, End: 10, Events: []event.Event{
		event.New("a", 1), event.New("c", 2),
	}}
	if ok, _ := EvalWindow(e, w); !ok {
		t.Error("parsed expression failed to evaluate")
	}
	if !strings.Contains(e.String(), "OR(b, c)") {
		t.Errorf("String = %q", e.String())
	}
}
