package server

// The admin endpoint: a small HTTP surface exposing the process's
// observability state — Prometheus metrics, liveness/readiness probes, a JSON
// stats document, and pprof — on a listener separate from the tenant wire
// protocol, so operators scrape and probe without touching the serving path.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"patterndp/internal/metrics"
	"patterndp/internal/runtime"
)

// AdminConfig configures an Admin handler. All fields are optional — a nil
// Registry serves an empty /metrics, a nil Runtime/Server just omits their
// halves of /statsz and their /readyz conditions — so the same handler serves
// the full network stack and the local replay mode alike.
type AdminConfig struct {
	// Registry is the metric registry /metrics renders and /statsz
	// summarizes.
	Registry *metrics.Registry
	// Runtime contributes serving stats to /statsz; a closed runtime flips
	// /readyz to 503.
	Runtime *runtime.Runtime
	// Server contributes per-tenant stats to /statsz; a draining server
	// (Drain or DrainForHandoff) flips /readyz to 503.
	Server *Server
}

// Admin is the admin HTTP handler. Serve it on its own listener:
//
//	adm := server.NewAdmin(server.AdminConfig{Registry: reg, Runtime: rt, Server: srv})
//	go http.Serve(l, adm)
//
// Routes: /metrics (Prometheus text), /healthz (process liveness), /readyz
// (serving readiness: 503 while draining, handing off, or after the runtime
// closed), /statsz (JSON stats document), /debug/pprof/* (runtime profiles).
type Admin struct {
	cfg   AdminConfig
	start time.Time
	mux   *http.ServeMux
	// notReady is the manual readiness override (SetReady), for phases the
	// Server's drain flag cannot see — e.g. a takeover process that is
	// listening for a handoff but not yet serving.
	notReady atomic.Bool
}

// NewAdmin builds the admin handler.
func NewAdmin(cfg AdminConfig) *Admin {
	a := &Admin{cfg: cfg, start: time.Now(), mux: http.NewServeMux()}
	a.mux.HandleFunc("/metrics", a.handleMetrics)
	a.mux.HandleFunc("/healthz", a.handleHealthz)
	a.mux.HandleFunc("/readyz", a.handleReadyz)
	a.mux.HandleFunc("/statsz", a.handleStatsz)
	a.mux.HandleFunc("/debug/pprof/", pprof.Index)
	a.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	a.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	a.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	a.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return a
}

// ServeHTTP implements http.Handler.
func (a *Admin) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

// SetReady overrides /readyz: SetReady(false) forces 503 regardless of the
// drain state, SetReady(true) restores the automatic conditions.
func (a *Admin) SetReady(ready bool) { a.notReady.Store(!ready) }

func (a *Admin) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	a.cfg.Registry.WritePrometheus(w)
}

func (a *Admin) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprintln(w, "ok")
}

func (a *Admin) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if reason, ok := a.ready(); !ok {
		http.Error(w, reason, http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// ready reports serving readiness and, when not ready, why.
func (a *Admin) ready() (string, bool) {
	if a.notReady.Load() {
		return "not ready", false
	}
	if srv := a.cfg.Server; srv != nil && srv.Draining() {
		return "draining", false
	}
	if rt := a.cfg.Runtime; rt != nil {
		select {
		case <-rt.Done():
			return "runtime closed", false
		default:
		}
	}
	return "", true
}

func (a *Admin) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(a.Statsz())
}

// Statsz collects the handler's stats document.
func (a *Admin) Statsz() Statsz {
	return CollectStatsz(a.cfg.Registry, a.cfg.Runtime, a.cfg.Server, time.Since(a.start))
}

// LatencySummary condenses one registry histogram series for /statsz.
type LatencySummary struct {
	// Metric is the series identity: family name plus rendered labels.
	Metric string `json:"metric"`
	// Count is the number of observations.
	Count int64 `json:"count"`
	// MeanMs, P50Ms, P99Ms, and MaxMs summarize the distribution in
	// milliseconds (quantiles are bucket-interpolated, Max is the upper
	// bound of the highest populated bucket).
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Statsz is the /statsz JSON document: uptime and throughput, the runtime
// snapshot, the serving layer's per-tenant stats, and a latency summary of
// every populated histogram. ppmserve's shutdown report prints from the same
// CollectStatsz output, so the two views can never disagree.
type Statsz struct {
	// UptimeSeconds is the collector's uptime (admin-handler start, or the
	// caller-supplied elapsed time).
	UptimeSeconds float64 `json:"uptime_seconds"`
	// EventsPerSec is the runtime's aggregate ingest rate since start.
	EventsPerSec float64 `json:"events_per_sec"`
	// Runtime is the runtime snapshot (nil without a runtime).
	Runtime *runtime.Stats `json:"runtime,omitempty"`
	// Server is the serving-layer snapshot with per-tenant counters and ε
	// spend (nil without a network server).
	Server *Stats `json:"server,omitempty"`
	// Latencies summarizes every histogram series with at least one
	// observation, sorted by metric identity.
	Latencies []LatencySummary `json:"latencies,omitempty"`
}

// CollectStatsz assembles the stats document from the three observability
// sources. Any of them may be nil. It is the single collection point behind
// both the /statsz endpoint and ppmserve's shutdown report.
func CollectStatsz(reg *metrics.Registry, rt *runtime.Runtime, srv *Server, uptime time.Duration) Statsz {
	z := Statsz{UptimeSeconds: uptime.Seconds()}
	if rt != nil {
		st := rt.Snapshot()
		z.Runtime = &st
		z.EventsPerSec = st.Throughput()
	}
	if srv != nil {
		st := srv.Stats()
		z.Server = &st
	}
	for _, s := range reg.Gather() {
		if s.Kind != metrics.KindHistogram || s.Hist == nil || s.Hist.Count == 0 {
			continue
		}
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		z.Latencies = append(z.Latencies, LatencySummary{
			Metric: seriesIdent(s),
			Count:  s.Hist.Count,
			MeanMs: ms(s.Hist.Mean()),
			P50Ms:  ms(s.Hist.Quantile(0.5)),
			P99Ms:  ms(s.Hist.Quantile(0.99)),
			MaxMs:  ms(s.Hist.Max()),
		})
	}
	sort.Slice(z.Latencies, func(i, j int) bool { return z.Latencies[i].Metric < z.Latencies[j].Metric })
	return z
}

// seriesIdent renders a series identity "name{k=v,...}" for /statsz.
func seriesIdent(s metrics.Series) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, l := range s.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}
