package cep

import (
	"math/rand"
	"testing"
	"testing/quick"

	"patterndp/internal/event"
	"patterndp/internal/stream"
)

// randomWindow builds a window from raw bytes: each byte places one event of
// a type from a 4-letter alphabet at an increasing timestamp.
func randomWindow(raw []byte) stream.Window {
	w := stream.Window{Start: 0, End: event.Timestamp(len(raw) + 1)}
	for i, b := range raw {
		t := event.Type(rune('a' + int(b)%4))
		w.Events = append(w.Events, event.New(t, event.Timestamp(i)))
	}
	return w
}

func TestPropertySeqIndicatorsIsConjunction(t *testing.T) {
	// Over indicators, SEQ reduces to conjunction of presences.
	f := func(pa, pb, pc bool) bool {
		present := map[event.Type]bool{"a": pa, "b": pb, "c": pc}
		got := EvalIndicators(SeqTypes("a", "b", "c"), present)
		return got == (pa && pb && pc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyNegIsComplement(t *testing.T) {
	f := func(raw []byte) bool {
		w := randomWindow(raw)
		e := SeqTypes("a", "b")
		pos, _ := EvalWindow(e, w)
		neg, _ := EvalWindow(NegOf(e), w)
		return pos != neg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyNFAAgreesWithEvaluator(t *testing.T) {
	// For unbounded windows, the streaming NFA finds a SEQ instance iff the
	// batch evaluator reports the sequence present.
	f := func(raw []byte) bool {
		w := randomWindow(raw)
		seq := SeqTypes("a", "b", "c")
		evalOK, _ := EvalWindow(seq, w)
		m, err := CompileSeq("q", seq, 0)
		if err != nil {
			return false
		}
		nfaOK := len(m.FeedAll(w.Events)) > 0
		return evalOK == nfaOK
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyWitnessIsOrderedAndInWindow(t *testing.T) {
	f := func(raw []byte) bool {
		w := randomWindow(raw)
		ok, witness := EvalWindow(SeqTypes("a", "b"), w)
		if !ok {
			return len(witness) == 0
		}
		if len(witness) != 2 {
			return false
		}
		if !witness[0].Before(witness[1]) {
			return false
		}
		for _, e := range witness {
			if e.Time < w.Start || e.Time >= w.End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyOrMonotone(t *testing.T) {
	// Adding a disjunct never turns a match into a non-match.
	f := func(raw []byte) bool {
		w := randomWindow(raw)
		base, _ := EvalWindow(OrOf(E("a"), E("b")), w)
		wider, _ := EvalWindow(OrOf(E("a"), E("b"), E("c")), w)
		return !base || wider
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyParseStringRoundTrip(t *testing.T) {
	// Rendering a random expression tree and re-parsing it preserves the
	// rendered form (String is a fixed point of Parse ∘ String).
	f := func(depth uint8, shape uint32) bool {
		e := randomExpr(rand.New(rand.NewSource(int64(shape))), int(depth%3)+1)
		s := e.String()
		back, _, err := Parse(s)
		if err != nil {
			return false
		}
		return back.String() == s
	}
	cfg := &quick.Config{MaxCount: 80}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func randomExpr(rng *rand.Rand, depth int) Expr {
	types := []event.Type{"a", "b", "c", "d"}
	if depth <= 0 {
		return E(types[rng.Intn(len(types))])
	}
	switch rng.Intn(5) {
	case 0:
		return SeqOf(randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	case 1:
		return AndOf(randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	case 2:
		return OrOf(randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	case 3:
		return NegOf(randomExpr(rng, depth-1))
	default:
		return E(types[rng.Intn(len(types))])
	}
}
