package server

import (
	"context"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"patterndp/internal/durable"
	"patterndp/internal/faultnet"
	"patterndp/internal/runtime"
)

// TestChaosSoak runs the serving layer over a fault-injecting transport —
// injected latency, chunked writes, and periodic forced resets of every live
// connection — while a feeder streams windows and a resilient subscriber
// rides the reconnect/resume machinery. Halfway through the soak the serving
// process performs a live rolling restart: it drains, freezes, hands its
// partition and spilled sessions to a successor, and the clients swing over
// mid-stream. The invariant under test is exactly-once-or-explicit-gap:
// within each session epoch (delimited by synthetic unknown-extent gap
// markers), every sequence number up to the highest observed is either
// delivered exactly once or covered by exactly one explicit gap marker —
// including straight across the handoff boundary. Silent loss and duplicate
// delivery both fail.
func TestChaosSoak(t *testing.T) {
	soak := 3 * time.Second
	if testing.Short() {
		soak = time.Second
	}
	dirA, dirB := t.TempDir(), filepath.Join(t.TempDir(), "b")
	rtA := newDurableTestRuntime(t, dirA, 1_000_000)
	t.Cleanup(func() { rtA.Close() })

	faultCfg := faultnet.Config{
		Seed:     42,
		DelayP:   0.05,
		MaxDelay: 2 * time.Millisecond,
		ChunkP:   0.2,
	}
	cfg := Config{
		Auth:         TokenAuth(0),
		Heartbeat:    100 * time.Millisecond,
		ResumeWindow: 10 * time.Second, // park across every injected reset
		ReplayBuffer: 8,                // small enough to force real gaps
	}
	// startNode serves rt behind a fresh fault-injecting listener.
	startNode := func(rt *runtime.Runtime) (*Server, *MemListener, *faultnet.Listener) {
		ncfg := cfg
		ncfg.Runtime = rt
		s, err := New(ncfg)
		if err != nil {
			t.Fatal(err)
		}
		m := NewMemListener()
		f := faultnet.Wrap(m, faultCfg)
		served := make(chan struct{})
		go func() {
			defer close(served)
			s.Serve(f)
		}()
		t.Cleanup(func() {
			s.Close()
			<-served
		})
		return s, m, f
	}
	srvA, memA, flA := startNode(rtA)

	// Failover dialer: clients follow whatever listener is current.
	var mem atomic.Pointer[MemListener]
	var fl atomic.Pointer[faultnet.Listener]
	mem.Store(memA)
	fl.Store(flA)
	dialer := func() (net.Conn, error) { return mem.Load().Dial() }
	ccfg := ClientConfig{
		Token:          "alice",
		Dialer:         dialer,
		Reconnect:      true,
		BackoffMin:     2 * time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
	}
	subscriber, err := Connect(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer subscriber.Close()
	feeder, err := Connect(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer feeder.Close()

	sub, err := subscriber.Subscribe("probe", 256)
	if err != nil {
		t.Fatal(err)
	}

	// Collector: one epoch per synthetic unknown-extent gap (Seq 0). Within
	// an epoch, delivered seqs and explicit gap ranges must tile [1, max]
	// with neither overlap nor holes.
	type epoch struct {
		delivered map[uint64]bool
		gapped    map[uint64]bool
		max       uint64
	}
	newEpoch := func() *epoch {
		return &epoch{delivered: map[uint64]bool{}, gapped: map[uint64]bool{}}
	}
	epochs := []*epoch{newEpoch()}
	var answers, gapMarkers, progress atomic.Int64
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for a := range sub.C {
			progress.Add(1)
			cur := epochs[len(epochs)-1]
			if a.Gap && a.Seq == 0 {
				// Unknown extent: the resume window lapsed; a new sequence
				// space begins.
				epochs = append(epochs, newEpoch())
				gapMarkers.Add(1)
				continue
			}
			if a.Gap {
				gapMarkers.Add(1)
				for q := a.GapFrom; q <= a.Seq; q++ {
					if cur.delivered[q] || cur.gapped[q] {
						t.Errorf("seq %d covered twice (gap over seen range)", q)
					}
					cur.gapped[q] = true
				}
				cur.max = max(cur.max, a.Seq)
				continue
			}
			if cur.delivered[a.Seq] || cur.gapped[a.Seq] {
				t.Errorf("seq %d delivered twice", a.Seq)
			}
			cur.delivered[a.Seq] = true
			cur.max = max(cur.max, a.Seq)
			answers.Add(1)
		}
	}()

	// Feeder: stream windows with retry — requests in flight across a reset
	// fail fast and are retried on the reconnected session.
	feederDone := make(chan int64)
	stopFeeder := make(chan struct{})
	go func() {
		var w int64
		for {
			select {
			case <-stopFeeder:
				feederDone <- w
				return
			default:
			}
			if _, err := feeder.Ingest(windowEvents("s1", w)); err != nil {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			w++
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Chaos driver: reset every live connection on a steady cadence, and at
	// the halfway mark perform one live handoff to a successor process while
	// the feeder and subscriber keep running.
	var resets int
	var srvB *Server
	deadline := time.Now().Add(soak)
	handoffAt := time.Now().Add(soak / 2)
	for time.Now().Before(deadline) {
		time.Sleep(150 * time.Millisecond)
		resets += fl.Load().ResetAll()
		if srvB != nil || time.Now().Before(handoffAt) {
			continue
		}
		// Rolling restart under chaos: A drains and freezes at a pane
		// boundary, spills parked sessions, ships the partition to B; B
		// recovers, adopts the sessions, and the dialer swings over. The
		// collector never pauses — the tiling invariant must hold straight
		// across the boundary.
		hctx, hcancel := context.WithTimeout(context.Background(), 15*time.Second)
		srvA.DrainForHandoff()
		if err := srvA.Wait(hctx); err != nil {
			t.Fatalf("drain wait: %v", err)
		}
		if err := rtA.Freeze(hctx); err != nil {
			t.Fatalf("freeze: %v", err)
		}
		hcancel()
		frozen := frozenSpend(rtA)
		sp := srvA.ExportSessions()
		if err := durable.WriteSessions(dirA, sp); err != nil {
			t.Fatal(err)
		}
		sendErr, _, recvErr := transferHandoff(t, dirA, dirB, len(sp.Sessions), frozen, HandoffCrashNone)
		if sendErr != nil || recvErr != nil {
			t.Fatalf("handoff: send %v recv %v", sendErr, recvErr)
		}
		rtB := newDurableTestRuntime(t, dirB, 1_000_000)
		t.Cleanup(func() { rtB.Close() })
		if got := recoveredSpend(rtB); got+1e-9 < frozen {
			t.Fatalf("recovered spend %g < frozen %g", got, frozen)
		}
		var memB *MemListener
		var flB *faultnet.Listener
		srvB, memB, flB = startNode(rtB)
		spill, err := durable.ReadSessions(dirB)
		if err != nil {
			t.Fatal(err)
		}
		if spill != nil {
			if _, err := srvB.ImportSessions(spill); err != nil {
				t.Fatal(err)
			}
			if err := durable.RemoveSessions(dirB); err != nil {
				t.Fatal(err)
			}
		}
		mem.Store(memB)
		fl.Store(flB)
	}
	if srvB == nil {
		t.Fatal("soak ended before the mid-soak handoff fired")
	}
	close(stopFeeder)
	fed := <-feederDone

	// Settle: feed two more windows on the now-stable transport so every
	// closed window's answer (and any trailing gap) flushes through.
	for flushed := int64(0); flushed < 2; {
		if _, err := feeder.Ingest(windowEvents("s1", fed+flushed)); err != nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		flushed++
	}
	// Quiesce: stop once the collector has made progress and then sees no
	// new delivery for half a second.
	quiesceBy := time.Now().Add(10 * time.Second)
	for {
		p := progress.Load()
		time.Sleep(500 * time.Millisecond)
		if answers.Load() > 0 && progress.Load() == p {
			break
		}
		if time.Now().After(quiesceBy) {
			t.Fatal("deliveries never quiesced")
		}
	}
	subscriber.Close()
	<-collectorDone

	// The soak must actually have exercised the machinery.
	if resets == 0 {
		t.Fatal("chaos driver never reset a connection")
	}
	if subscriber.Reconnects() == 0 {
		t.Error("subscriber never resumed a session despite forced resets")
	}
	if answers.Load() == 0 {
		t.Fatal("no answers delivered during soak")
	}
	if srvB.Stats().SessionsImported == 0 {
		t.Error("successor adopted no spilled sessions during the handoff")
	}

	// The invariant: within every epoch, delivered ∪ gapped tiles [1, max].
	for i, ep := range epochs {
		for q := uint64(1); q <= ep.max; q++ {
			if !ep.delivered[q] && !ep.gapped[q] {
				t.Errorf("epoch %d: seq %d lost silently (max %d)", i, q, ep.max)
			}
		}
	}
	ts := tenantStats(t, srvB, "alice")
	t.Logf("soak: %d resets, %d reconnects (subscriber) / %d (feeder), %d answers, %d gap markers, %d epochs, %d sessions adopted; tenant: %d replayed, %d resumes, %d gaps sent, %d dropped, %d write timeouts",
		resets, subscriber.Reconnects(), feeder.Reconnects(), answers.Load(), gapMarkers.Load(), len(epochs), srvB.Stats().SessionsImported,
		ts.AnswersReplayed, ts.Resumes, ts.GapsSent, ts.AnswersDropped, ts.WriteTimeouts)
}
