package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pair dials through a wrapped TCP loopback listener and returns the
// client-side raw conn and the server-side faulty conn.
func pair(t *testing.T, cfg Config) (client net.Conn, server net.Conn, l *Listener) {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l = Wrap(inner, cfg)
	t.Cleanup(func() { l.Close() })
	type acceptRes struct {
		c   net.Conn
		err error
	}
	ch := make(chan acceptRes, 1)
	go func() {
		c, err := l.Accept()
		ch <- acceptRes{c, err}
	}()
	client, err = net.Dial("tcp", inner.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	res := <-ch
	if res.err != nil {
		t.Fatal(res.err)
	}
	t.Cleanup(func() { res.c.Close() })
	return client, res.c, l
}

func TestChunkedWriteReassembles(t *testing.T) {
	client, server, _ := pair(t, Config{Seed: 7, ChunkP: 1, MaxDelay: time.Millisecond})
	msg := bytes.Repeat([]byte("stream-of-bytes-"), 64)
	done := make(chan error, 1)
	go func() {
		_, err := server.Write(msg)
		done <- err
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Error("chunked write corrupted the byte stream")
	}
}

func TestInjectedResetFailsOperations(t *testing.T) {
	_, server, l := pair(t, Config{Seed: 3, ResetP: 1})
	if _, err := server.Write([]byte("doomed")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("want injected reset, got %v", err)
	}
	// Once reset, every subsequent operation fails the same way.
	if _, err := server.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("read after reset: %v", err)
	}
	if _, resets := l.Stats(); resets != 1 {
		t.Errorf("resets = %d, want 1", resets)
	}
}

func TestResetAllCutsLiveConns(t *testing.T) {
	client, server, l := pair(t, Config{Seed: 5})
	if n := l.ResetAll(); n != 1 {
		t.Fatalf("ResetAll cut %d conns, want 1", n)
	}
	if _, err := server.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Errorf("server write after ResetAll: %v", err)
	}
	// The raw peer observes the closed transport.
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := client.Read(make([]byte, 1)); err == nil {
		t.Error("client read succeeded after ResetAll")
	}
	accepted, resets := l.Stats()
	if accepted != 1 || resets != 1 {
		t.Errorf("stats = (%d accepted, %d resets), want (1, 1)", accepted, resets)
	}
}

func TestCloseForgetsConn(t *testing.T) {
	_, server, l := pair(t, Config{Seed: 9})
	server.Close()
	if n := l.ResetAll(); n != 0 {
		t.Errorf("ResetAll found %d conns after Close, want 0", n)
	}
}

func TestDelaySlowsButPreservesBytes(t *testing.T) {
	client, server, _ := pair(t, Config{Seed: 11, DelayP: 0.5, MaxDelay: time.Millisecond})
	msg := []byte("latency is not loss")
	go server.Write(msg)
	got := make([]byte, len(msg))
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Error("delayed write corrupted the byte stream")
	}
}
