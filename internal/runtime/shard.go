package runtime

import (
	"sort"
	"sync/atomic"

	"patterndp/internal/core"
	"patterndp/internal/event"
	"patterndp/internal/metrics"
	"patterndp/internal/stream"
)

// shardStats are one shard's serving counters. They are bumped only by the
// shard's serving goroutine (droppedIngest: by producers) and loaded
// concurrently by Snapshot.
type shardStats struct {
	eventsIn       metrics.Counter
	windowsClosed  metrics.Counter
	answersEmitted metrics.Counter
	droppedLate    metrics.Counter
	droppedFuture  metrics.Counter
	droppedIngest  metrics.Counter
	droppedFailed  metrics.Counter
	streams        metrics.Counter
	streamsEvicted metrics.Counter
}

// streamState is the per-stream serving state owned by one shard: the
// stream's incremental windower, its next window index, and the shard clock
// reading of its last event (for idle eviction).
type streamState struct {
	win      *Windower
	next     int
	lastSeen int64
}

// shard is one serving unit: a bounded ingest channel, its own PrivateEngine
// around its own mechanism instance (independently seeded), and the window
// state of every stream routed to it. All fields past the channel are owned
// by the shard's run goroutine (epoch is additionally loaded by Snapshot).
type shard struct {
	id      int
	rt      *Runtime
	engine  *core.PrivateEngine
	cur     *controlState // control state currently applied to engine
	epoch   atomic.Uint64 // cur.epoch, mirrored for Snapshot
	in      chan event.Event
	streams map[string]*streamState
	clock   int64 // events served; drives idle-stream eviction
	stats   shardStats
	failed  atomic.Bool // set on the first serving error; checked by Ingest
	err     error       // first serving error; read after rt.wg.Wait()
}

// syncControl applies any control-plane epochs published since the shard
// last served a window. It runs only at window boundaries — the caller is
// about to serve a fully closed window — so no window is ever answered under
// a half-applied registration state. A private-set change rebuilds the
// mechanism (via the configured factory, so budget splits stay coherent over
// the new set) and the engine around it; a query-only change adjusts the
// live engine's target set in place, preserving mechanism state. It reports
// false on a rebuild error, which it records for Close to surface, like
// emit.
func (s *shard) syncControl() bool {
	st := s.rt.ctl.Load()
	if st == s.cur {
		return true
	}
	if st.privEpoch != s.cur.privEpoch {
		eng, err := s.rt.buildEngine(s.id, st)
		if err != nil {
			return s.fail(err)
		}
		s.engine = eng
	} else if err := s.engine.SetTargets(st.targets); err != nil {
		return s.fail(err)
	}
	s.cur = st
	s.epoch.Store(uint64(st.epoch))
	return true
}

// fail records the shard's first serving error and flips the failed flag so
// Ingest starts rejecting; it always returns false for use in serving paths.
func (s *shard) fail(err error) bool {
	if s.err == nil {
		s.err = err
	}
	s.failed.Store(true)
	return false
}

// run is the shard's serving loop: window every incoming event's stream,
// serve closed windows through the engine, and publish released answers.
// When the ingest channel closes it drains, flushing every stream's trailing
// windows in deterministic key order.
func (s *shard) run() {
	defer s.rt.wg.Done()
	for e := range s.in {
		s.stats.eventsIn.Inc()
		s.clock++
		key := streamKey(e)
		st := s.streams[key]
		if st == nil {
			st = &streamState{win: NewWindower(s.rt.cfg.WindowWidth, s.rt.cfg.Lateness, s.rt.cfg.AllowedLateness, s.rt.cfg.Horizon)}
			s.streams[key] = st
			s.stats.streams.Inc()
		}
		st.lastSeen = s.clock
		if evict := s.rt.cfg.EvictAfter; evict > 0 && s.clock%evict == 0 {
			if !s.sweep(evict) {
				for range s.in {
					s.stats.droppedFailed.Inc()
				}
				return
			}
		}
		ws, res := st.win.Push(e)
		switch res {
		case PushLate:
			s.stats.droppedLate.Inc()
		case PushFuture:
			s.stats.droppedFuture.Inc()
		}
		if !s.emit(key, st, ws) {
			// Serving failed: keep draining so blocked producers and
			// Close are not wedged on a full channel. The discarded
			// events are counted, and Ingest starts rejecting new
			// ones via the failed flag.
			for range s.in {
				s.stats.droppedFailed.Inc()
			}
			return
		}
	}
	keys := make([]string, 0, len(s.streams))
	for k := range s.streams {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		st := s.streams[key]
		if !s.emit(key, st, st.win.Flush()) {
			return
		}
	}
}

// sweep flushes and frees the state of every stream that has not seen an
// event for more than evict shard events, bounding memory under stream-key
// churn. Run amortized (every evict events), each stream's state lives at
// most ~2×evict events past its last activity. It reports false on a
// serving error, like emit.
func (s *shard) sweep(evict int64) bool {
	var idle []string
	for key, st := range s.streams {
		if s.clock-st.lastSeen > evict {
			idle = append(idle, key)
		}
	}
	sort.Strings(idle)
	for _, key := range idle {
		st := s.streams[key]
		if !s.emit(key, st, st.win.Flush()) {
			return false
		}
		delete(s.streams, key)
		s.stats.streamsEvicted.Inc()
	}
	return true
}

// emit serves closed windows one at a time — stateful mechanisms see windows
// in stream order — and publishes every released answer tagged with the
// stream key, per-stream window index, and the control-plane epoch it was
// served under. Pending epochs are applied between windows, never within
// one, so each answer's epoch names exactly the query and private sets that
// produced it. Windows closed while no query is registered are counted but
// answer nothing (the window index still advances, keeping indices aligned
// with time). It reports false on the first engine error, which it records
// for Close to surface.
func (s *shard) emit(key string, st *streamState, ws []stream.Window) bool {
	for _, w := range ws {
		if !s.syncControl() {
			return false
		}
		if len(s.cur.targets) == 0 {
			s.stats.windowsClosed.Inc()
			st.next++
			continue
		}
		answers, err := s.engine.ProcessWindows([]stream.Window{w})
		if err != nil {
			return s.fail(err)
		}
		s.stats.windowsClosed.Inc()
		for _, a := range answers {
			a.WindowIndex = st.next
			s.rt.bus.publish(Answer{Stream: key, Shard: s.id, Epoch: s.cur.epoch, Answer: a})
			s.stats.answersEmitted.Inc()
		}
		st.next++
	}
	return true
}
