// Package server is the network serving layer: it exposes a runtime.Runtime
// to remote tenants over the wire protocol (package wire), multiplexing many
// tenant connections onto one shared serving runtime.
//
// Isolation is by namespacing, not by partitioning: every stream key and
// every tenant-registered query name is prefixed "tenant/" before it reaches
// the runtime, so two tenants ingesting a stream "s1" land on the distinct
// keys "a/s1" and "b/s1" — distinct windowers, distinct budget sub-ledgers,
// distinct answer feeds. Answer delivery applies the inverse: a session only
// forwards answers whose stream key carries its tenant's prefix, and strips
// the prefix before the wire, so no tenant ever observes another tenant's
// stream keys or answers. Per-tenant ε spend falls out of the same prefixes
// via Runtime.SpendByNamespace.
//
// Backpressure is per subscription. Each subscription owns a bounded replay
// ring of sequence-numbered answers, swept onto the wire by the session's
// single writer goroutine; bridge goroutines moving answers from runtime
// subscriptions into the rings never block — an answer that overflows the
// ring evicts the oldest entry, and the eviction surfaces to the subscriber
// as an explicit Gap marker answer. A slow or stalled subscriber therefore
// costs itself answers but never stalls the runtime's publish path or any
// other tenant's delivery. Control replies (acks, errors) are never dropped:
// they are written from the session's request loop, which blocks — and
// thereby backpressures — only the connection that issued the request.
//
// Resilience: sessions carry liveness deadlines (a peer silent for two
// heartbeat intervals is reaped; every frame write is bounded by a write
// deadline) and survive disconnects — the session's durable half (replay
// rings, subscriptions) lingers for a resume window, and a reconnecting
// client re-attaches with a Resume handshake that replays the missed tail
// exactly once or degrades with a Gap marker.
package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"patterndp/internal/account"
	"patterndp/internal/metrics"
	"patterndp/internal/runtime"
)

// Tenant is an authenticated principal.
type Tenant struct {
	// ID is the namespace prefix for the tenant's streams and queries. It
	// must be non-empty and must not contain '/' (the namespace delimiter).
	ID string
	// MaxStreams caps how many distinct stream keys the tenant may ingest
	// across all its connections; 0 is unlimited. The cap bounds the
	// tenant's total budget surface (each stream carries its own grant).
	MaxStreams int
}

// AuthFunc maps a Hello token to a Tenant. Returning an error rejects the
// connection with CodeAuth; the error text is sent to the client.
type AuthFunc func(token string) (Tenant, error)

// TokenAuth is the trivial AuthFunc: the token is the tenant id, any
// non-empty delimiter-free token is accepted, and maxStreams applies to
// every tenant uniformly.
func TokenAuth(maxStreams int) AuthFunc {
	return func(token string) (Tenant, error) {
		if token == "" || strings.ContainsRune(token, '/') {
			return Tenant{}, fmt.Errorf("invalid tenant token %q", token)
		}
		return Tenant{ID: token, MaxStreams: maxStreams}, nil
	}
}

// Config configures a Server.
type Config struct {
	// Runtime is the shared serving runtime. Required. The server does not
	// own it: the caller closes it (after Drain) during shutdown.
	Runtime *runtime.Runtime
	// Auth authenticates Hello tokens. Required.
	Auth AuthFunc
	// ReplayBuffer is each subscription's answer ring capacity: the outbound
	// queue and the replay window in one. Answers beyond it evict the oldest
	// entries (counted, and surfaced to the subscriber as a Gap marker)
	// rather than stalling delivery to other sessions. Default: 256.
	ReplayBuffer int
	// Heartbeat is the ping cadence announced to clients; a session whose
	// peer stays silent for two intervals is presumed dead and its
	// connection reaped. 0 = 10s; negative disables liveness deadlines.
	Heartbeat time.Duration
	// WriteTimeout bounds every frame write so a wedged peer cannot hold the
	// write path (and with it heartbeats and answers) for the whole session.
	// 0 = the heartbeat interval; negative disables.
	WriteTimeout time.Duration
	// ResumeWindow is how long a disconnected session's replay state lingers
	// for a Resume before it is reaped. 0 = 30s; negative disables resume.
	ResumeWindow time.Duration
	// MaxParkedSessions caps how many disconnected sessions may hold replay
	// state at once, server-wide. Parking one more evicts the
	// longest-parked core (counted in SessionsEvicted); its client falls
	// back to a fresh handshake. 0 = unlimited.
	MaxParkedSessions int
	// MaxParkedPerTenant is the same cap applied per tenant, so one
	// flapping tenant cannot consume the whole parked budget. 0 =
	// unlimited.
	MaxParkedPerTenant int
	// RateLimit caps each tenant's ingest rate in events per second (token
	// bucket with one second of burst). Refused batches get CodeThrottled
	// with a retry-after hint; nothing is partially admitted. 0 =
	// unlimited.
	RateLimit float64
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
	// Metrics, when set, receives the server's observability series:
	// connection and session-lifecycle counters, per-tenant serving counters
	// (labelled tenant=<id>), and the wire encode/decode and end-to-end
	// delivery latency histograms. A registry must back at most one Server
	// (its func-backed series cannot be registered twice). Typically the
	// same registry as runtime.Config.Metrics, so one /metrics scrape covers
	// the whole pipeline.
	Metrics *metrics.Registry
}

// Server accepts tenant connections and serves them from one runtime.
type Server struct {
	cfg Config

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	sessions  map[*session]struct{}
	tenants   map[string]*tenantState
	cores     map[string]*sessionCore // session token → durable state
	draining  bool
	handoff   bool // draining for a handoff: park cores instead of retiring
	closed    bool

	wg sync.WaitGroup

	connsOpen     metrics.Gauge
	connsTotal    metrics.Counter
	authFailures  metrics.Counter
	coresExpired  metrics.Counter
	coresEvicted  metrics.Counter
	coresImported metrics.Counter

	// Wire-path histograms, nil without Config.Metrics (sessions gate on
	// that, so an unobserved server reads no clocks on the frame paths).
	decodeH  *metrics.Histogram
	encodeH  *metrics.Histogram
	deliverH *metrics.Histogram
}

// heartbeat is the resolved liveness interval (0 = disabled).
func (s *Server) heartbeat() time.Duration { return max(s.cfg.Heartbeat, 0) }

// writeTimeout is the resolved per-frame write deadline (0 = disabled).
func (s *Server) writeTimeout() time.Duration { return max(s.cfg.WriteTimeout, 0) }

// resumeWindow is the resolved post-disconnect grace period (0 = disabled).
func (s *Server) resumeWindow() time.Duration { return max(s.cfg.ResumeWindow, 0) }

// replayBuffer is each subscription's ring capacity.
func (s *Server) replayBuffer() int { return s.cfg.ReplayBuffer }

// stopping reports whether Drain or Close has begun.
func (s *Server) stopping() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.closed
}

// handingOff reports whether the drain in progress is a handoff drain, in
// which case detaching sessions park (to be spilled) instead of retiring.
func (s *Server) handingOff() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.handoff && !s.closed
}

// tenantState is the server-wide per-tenant aggregate, shared by all of the
// tenant's sessions.
type tenantState struct {
	tenant Tenant

	mu      sync.Mutex
	streams map[string]struct{} // distinct namespaced stream keys ingested

	// Ingest token bucket (Config.RateLimit): rlTokens may go one batch
	// into debt, so an oversized batch is admitted once and then throttled
	// until the debt drains. Guarded by mu.
	rlTokens float64
	rlLast   time.Time

	sessions        metrics.Gauge
	eventsIn        metrics.Counter
	answersSent     metrics.Counter
	answersDropped  metrics.Counter
	answersReplayed metrics.Counter
	resumes         metrics.Counter
	gapsSent        metrics.Counter
	writeTimeouts   metrics.Counter
	throttled       metrics.Counter
	sessionsEvicted metrics.Counter
}

// admitRate charges n events against the tenant's token bucket at rate
// events/s. When the bucket is in debt the batch is refused and retryAfter
// says how long until it is positive again.
func (ts *tenantState) admitRate(n int, rate float64, now time.Time) (retryAfter time.Duration, ok bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	burst := rate // one second of burst
	if ts.rlLast.IsZero() {
		ts.rlTokens = burst
	} else if dt := now.Sub(ts.rlLast).Seconds(); dt > 0 {
		ts.rlTokens = math.Min(burst, ts.rlTokens+dt*rate)
	}
	ts.rlLast = now
	if ts.rlTokens <= 0 {
		wait := time.Duration((1 - ts.rlTokens) / rate * float64(time.Second))
		return max(wait, time.Millisecond), false
	}
	ts.rlTokens -= float64(n)
	return 0, true
}

// admitStreams checks the tenant's stream cap against a batch's distinct
// stream keys (already namespaced) and records them if admitted.
func (ts *tenantState) admitStreams(keys map[string]struct{}) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if max := ts.tenant.MaxStreams; max > 0 {
		fresh := 0
		for k := range keys {
			if _, ok := ts.streams[k]; !ok {
				fresh++
			}
		}
		if len(ts.streams)+fresh > max {
			return fmt.Errorf("stream cap %d reached", max)
		}
	}
	for k := range keys {
		ts.streams[k] = struct{}{}
	}
	return nil
}

// New builds a Server. The runtime must already be serving.
func New(cfg Config) (*Server, error) {
	if cfg.Runtime == nil {
		return nil, errors.New("server: Config.Runtime is required")
	}
	if cfg.Auth == nil {
		return nil, errors.New("server: Config.Auth is required")
	}
	if cfg.ReplayBuffer == 0 {
		cfg.ReplayBuffer = 256
	}
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = 10 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = cfg.Heartbeat
	}
	if cfg.ResumeWindow == 0 {
		cfg.ResumeWindow = 30 * time.Second
	}
	s := &Server{
		cfg:       cfg,
		listeners: make(map[net.Listener]struct{}),
		sessions:  make(map[*session]struct{}),
		tenants:   make(map[string]*tenantState),
		cores:     make(map[string]*sessionCore),
	}
	if cfg.Metrics != nil {
		s.registerMetrics(cfg.Metrics)
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ErrServerClosed is returned by Serve after Drain or Close stopped the
// accept loop.
var ErrServerClosed = errors.New("server: closed")

// Serve accepts connections from l until Drain or Close. It always closes l
// before returning. Serve may be called concurrently on several listeners
// (a TCP listener and an in-memory one, say).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		l.Close()
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			stopped := s.draining || s.closed
			s.mu.Unlock()
			if stopped {
				return ErrServerClosed
			}
			return err
		}
		ss := newSession(s, conn)
		s.mu.Lock()
		if s.draining || s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.sessions[ss] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.connsOpen.Inc()
		s.connsTotal.Inc()
		go func() {
			defer s.wg.Done()
			defer s.connsOpen.Dec()
			ss.run()
			s.mu.Lock()
			delete(s.sessions, ss)
			s.mu.Unlock()
		}()
	}
}

// tenantFor returns (creating on first use) the server-wide state for a
// tenant.
func (s *Server) tenantFor(t Tenant) *tenantState {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.tenants[t.ID]
	if ts == nil {
		ts = &tenantState{tenant: t, streams: make(map[string]struct{})}
		s.tenants[t.ID] = ts
		if reg := s.cfg.Metrics; reg != nil {
			// First sight of the tenant id is the one registration point
			// (func-backed series cannot be registered twice).
			registerTenantMetrics(reg, ts)
		}
	}
	return ts
}

// Drain begins a graceful shutdown: every listener stops accepting, new
// ingest and registration requests are rejected with CodeDraining, and every
// live session is sent a Goodbye so clients finish draining their answer
// subscriptions and disconnect. Drain is idempotent and returns immediately;
// follow it with Runtime.CloseContext (flushing in-flight windows through
// the WAL and cutting the final checkpoint, which also ends every answer
// bridge) and then Wait.
func (s *Server) Drain() {
	if !s.beginDrain(false, "drain") {
		return
	}
	// Parked cores have no client to resume them through a shutdown.
	for _, c := range s.coreList() {
		c.retireIf(true)
	}
}

// DrainForHandoff begins a handoff drain: like Drain, but session state is
// being shipped to a takeover peer, so parked cores are kept (for
// ExportSessions) rather than retired, detaching sessions park rather than
// retire, and live connections are closed once told goodbye — their clients
// are expected to reconnect-and-resume against the peer. Idempotent against
// itself; a plain Drain that got there first wins.
func (s *Server) DrainForHandoff() {
	if !s.beginDrain(true, "handoff") {
		return
	}
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for ss := range s.sessions {
		sessions = append(sessions, ss)
	}
	s.mu.Unlock()
	for _, ss := range sessions {
		ss.close()
	}
}

// beginDrain is the shared head of Drain and DrainForHandoff: stop accepting,
// reject mutating requests, and say goodbye to every live session. It reports
// false when a drain had already begun.
func (s *Server) beginDrain(handoff bool, reason string) bool {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return false
	}
	s.draining = true
	s.handoff = handoff
	ls := make([]net.Listener, 0, len(s.listeners))
	for l := range s.listeners {
		ls = append(ls, l)
	}
	sessions := make([]*session, 0, len(s.sessions))
	for ss := range s.sessions {
		sessions = append(sessions, ss)
	}
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, ss := range sessions {
		ss.goodbye(reason)
	}
	return true
}

// enforceParkCaps evicts the longest-parked cores while the just-parked
// tenant exceeds MaxParkedPerTenant or the server exceeds MaxParkedSessions.
// Eviction retires the core — its client falls back to a fresh handshake with
// an explicit unknown-extent gap, never silent loss.
func (s *Server) enforceParkCaps(ts *tenantState) {
	global, perTenant := s.cfg.MaxParkedSessions, s.cfg.MaxParkedPerTenant
	if global <= 0 && perTenant <= 0 {
		return
	}
	for {
		var parked, tenantParked int
		var oldest, tenantOldest *sessionCore
		var oldestAt, tenantOldestAt time.Time
		for _, c := range s.coreList() {
			c.mu.Lock()
			isParked := c.attached == nil && !c.retired && c.reap != nil
			at := c.parkedAt
			c.mu.Unlock()
			if !isParked {
				continue
			}
			parked++
			if oldest == nil || at.Before(oldestAt) {
				oldest, oldestAt = c, at
			}
			if c.tenant == ts {
				tenantParked++
				if tenantOldest == nil || at.Before(tenantOldestAt) {
					tenantOldest, tenantOldestAt = c, at
				}
			}
		}
		victim := (*sessionCore)(nil)
		switch {
		case perTenant > 0 && tenantParked > perTenant:
			victim = tenantOldest
		case global > 0 && parked > global:
			victim = oldest
		}
		if victim == nil {
			return
		}
		// A victim that re-attached between the scan and the retire is
		// simply not counted; the rescan sees it as live.
		if victim.retireIf(true) {
			s.coresEvicted.Inc()
			victim.tenant.sessionsEvicted.Inc()
		}
	}
}

// coreList snapshots the live cores.
func (s *Server) coreList() []*sessionCore {
	s.mu.Lock()
	defer s.mu.Unlock()
	cores := make([]*sessionCore, 0, len(s.cores))
	for _, c := range s.cores {
		cores = append(cores, c)
	}
	return cores
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Wait blocks until every session has closed, or until ctx expires — in
// which case remaining connections are force-closed before returning the
// context's error.
func (s *Server) Wait(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.Close()
		<-done
		return ctx.Err()
	}
}

// Close force-closes every listener and live connection. Prefer
// Drain/Wait; Close is the hard stop.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.draining = true
	ls := make([]net.Listener, 0, len(s.listeners))
	for l := range s.listeners {
		ls = append(ls, l)
	}
	sessions := make([]*session, 0, len(s.sessions))
	for ss := range s.sessions {
		sessions = append(sessions, ss)
	}
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, ss := range sessions {
		ss.close()
	}
	for _, c := range s.coreList() {
		c.retireIf(false)
	}
}

// TenantStats is one tenant's serving aggregate.
type TenantStats struct {
	// Tenant is the tenant id.
	Tenant string
	// Sessions is the tenant's live connection count.
	Sessions int64
	// Streams counts the distinct stream keys the tenant has ingested.
	Streams int
	// EventsIn counts events accepted from the tenant's Ingest requests.
	EventsIn int64
	// AnswersSent counts answer frames delivered to the tenant.
	AnswersSent int64
	// AnswersDropped counts answers evicted from replay rings by overflow
	// before delivery (each run of evictions surfaces as one Gap marker).
	AnswersDropped int64
	// AnswersReplayed counts answers queued for re-delivery by Resume
	// handshakes.
	AnswersReplayed int64
	// Resumes counts successful Resume handshakes (reconnects that
	// re-attached to live session state).
	Resumes int64
	// GapsSent counts explicit Gap marker answers delivered.
	GapsSent int64
	// WriteTimeouts counts frame writes abandoned at the write deadline
	// (each closes its session: the frame may be torn on the wire).
	WriteTimeouts int64
	// Throttled counts ingest batches refused by the tenant's events/s
	// rate limit (CodeThrottled).
	Throttled int64
	// SessionsEvicted counts this tenant's parked sessions evicted by the
	// parked-session caps before their resume window ended.
	SessionsEvicted int64
	// Spend is the tenant's live budget position (zero value when the
	// runtime serves without accounting or the tenant has no live streams).
	Spend account.NamespaceSpend
}

// Stats is a point-in-time snapshot of the serving layer.
type Stats struct {
	// ConnsOpen and ConnsTotal count live and lifetime-accepted
	// connections.
	ConnsOpen, ConnsTotal int64
	// AuthFailures counts rejected Hello frames.
	AuthFailures int64
	// SessionsParked counts disconnected sessions currently holding replay
	// state, awaiting a Resume inside the grace window.
	SessionsParked int64
	// SessionsExpired counts parked sessions reaped at the end of the
	// resume window without a Resume.
	SessionsExpired int64
	// SessionsEvicted counts parked sessions evicted by the
	// MaxParkedSessions / MaxParkedPerTenant caps.
	SessionsEvicted int64
	// SessionsImported counts sessions adopted from a handoff spill
	// (ImportSessions), available for Resume against this process.
	SessionsImported int64
	// Tenants holds one entry per tenant seen, sorted by id.
	Tenants []TenantStats
}

// Stats snapshots the serving layer, joining connection counters with the
// runtime ledger's per-namespace spend.
func (s *Server) Stats() Stats {
	spend := make(map[string]account.NamespaceSpend)
	for _, ns := range s.cfg.Runtime.SpendByNamespace(namespaceDelim) {
		spend[ns.Namespace] = ns
	}
	st := Stats{
		ConnsOpen:        s.connsOpen.Load(),
		ConnsTotal:       s.connsTotal.Load(),
		AuthFailures:     s.authFailures.Load(),
		SessionsExpired:  s.coresExpired.Load(),
		SessionsEvicted:  s.coresEvicted.Load(),
		SessionsImported: s.coresImported.Load(),
	}
	for _, c := range s.coreList() {
		c.mu.Lock()
		if c.attached == nil && !c.retired {
			st.SessionsParked++
		}
		c.mu.Unlock()
	}
	s.mu.Lock()
	for id, ts := range s.tenants {
		ts.mu.Lock()
		streams := len(ts.streams)
		ts.mu.Unlock()
		st.Tenants = append(st.Tenants, TenantStats{
			Tenant:          id,
			Sessions:        ts.sessions.Load(),
			Streams:         streams,
			EventsIn:        ts.eventsIn.Load(),
			AnswersSent:     ts.answersSent.Load(),
			AnswersDropped:  ts.answersDropped.Load(),
			AnswersReplayed: ts.answersReplayed.Load(),
			Resumes:         ts.resumes.Load(),
			GapsSent:        ts.gapsSent.Load(),
			WriteTimeouts:   ts.writeTimeouts.Load(),
			Throttled:       ts.throttled.Load(),
			SessionsEvicted: ts.sessionsEvicted.Load(),
			Spend:           spend[id],
		})
	}
	s.mu.Unlock()
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Tenant < st.Tenants[j].Tenant })
	return st
}

// namespaceDelim separates the tenant prefix from tenant-relative names in
// stream keys and query names.
const namespaceDelim = '/'

// reqCounter hands out client-visible request ids on the client side.
type reqCounter struct{ v atomic.Uint64 }

func (c *reqCounter) next() uint64 { return c.v.Add(1) }
