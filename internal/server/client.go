package server

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"patterndp/internal/event"
	"patterndp/internal/wire"
)

// Client is a tenant-side connection to a Server. Requests (Ingest,
// Subscribe, registrations) are synchronous — each waits for its Ack or
// Error — while answers stream asynchronously into per-subscription
// channels. A Client is safe for concurrent use; requests from multiple
// goroutines are serialized per id.
type Client struct {
	conn    net.Conn
	welcome wire.Welcome

	wmu sync.Mutex // serializes frame writes
	req reqCounter

	mu      sync.Mutex
	pending map[uint64]chan result     // request id → reply slot
	subs    map[uint64]*clientSubState // subscription id → delivery state
	subID   uint64
	err     error // terminal read-loop error
	done    chan struct{}

	// Goodbye receives the server's drain announcement, if any (buffered;
	// at most one).
	Goodbye chan wire.Goodbye
}

// result is one request's Ack or Error.
type result struct {
	ack  wire.Ack
	werr *wire.Error
}

// clientSubState is one subscription's delivery state, closed exactly once
// no matter who terminates it first (Unsubscribe, Close, or the read loop's
// failure path). It mirrors the runtime bus's Subscription: done is closed
// before the channel so a blocked delivery aborts instead of racing the
// close, and sendMu serializes deliveries against the close itself.
type clientSubState struct {
	ch   chan wire.Answer
	done chan struct{}
	once sync.Once

	sendMu sync.Mutex
	mu     sync.Mutex
	closed bool
}

// send delivers one answer, blocking while the buffer is full — an undrained
// subscription deliberately stalls the client's read loop.
func (s *clientSubState) send(a wire.Answer) {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return
	}
	select {
	case s.ch <- a:
	case <-s.done:
	}
}

// terminate closes the subscription exactly once; buffered answers stay
// drainable.
func (s *clientSubState) terminate() {
	s.once.Do(func() {
		close(s.done)
		s.sendMu.Lock()
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		close(s.ch)
		s.sendMu.Unlock()
	})
}

// RemoteError is a server-reported request failure.
type RemoteError struct {
	Code uint8
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("server error %d: %s", e.Code, e.Msg)
}

// Dial performs the Hello → Welcome handshake over an established
// connection. On success the Client owns conn.
func Dial(conn net.Conn, token string) (*Client, error) {
	h := wire.Hello{Proto: wire.Version, Token: token}
	if err := wire.WriteFrame(conn, wire.THello, wire.AppendHello(nil, h)); err != nil {
		conn.Close()
		return nil, err
	}
	r := wire.NewReader(conn)
	f, err := r.Next()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: handshake: %w", err)
	}
	switch f.Type {
	case wire.TWelcome:
	case wire.TError:
		we, derr := wire.DecodeError(f.Payload)
		conn.Close()
		if derr != nil {
			return nil, derr
		}
		return nil, &RemoteError{Code: we.Code, Msg: we.Msg}
	default:
		conn.Close()
		return nil, fmt.Errorf("server: handshake: unexpected frame %v", f.Type)
	}
	w, err := wire.DecodeWelcome(f.Payload)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c := &Client{
		conn:    conn,
		welcome: w,
		pending: make(map[uint64]chan result),
		subs:    make(map[uint64]*clientSubState),
		done:    make(chan struct{}),
		Goodbye: make(chan wire.Goodbye, 1),
	}
	go c.readLoop(r)
	return c, nil
}

// Welcome returns the server's handshake reply (tenant id, shard count,
// budget grant, shared query names).
func (c *Client) Welcome() wire.Welcome { return c.welcome }

// readLoop demultiplexes inbound frames: answers to their subscription
// channels, acks and errors to their pending request slots.
func (c *Client) readLoop(r *wire.Reader) {
	var err error
	defer func() { c.fail(err) }()
	for {
		var f wire.Frame
		f, err = r.Next()
		if err != nil {
			return
		}
		switch f.Type {
		case wire.TAnswer:
			a, derr := wire.DecodeAnswer(f.Payload)
			if derr != nil {
				err = derr
				return
			}
			c.mu.Lock()
			st := c.subs[a.Sub]
			c.mu.Unlock()
			if st != nil {
				// Blocking delivery is deliberate: an undrained
				// subscription stalls this client's reads (and, via the
				// transport, fills the server's outbound queue for this
				// connection only).
				st.send(a)
			}
		case wire.TAck:
			a, derr := wire.DecodeAck(f.Payload)
			if derr != nil {
				err = derr
				return
			}
			c.reply(a.Req, result{ack: a})
		case wire.TSubscribed:
			s, derr := wire.DecodeSubscribed(f.Payload)
			if derr != nil {
				err = derr
				return
			}
			c.reply(s.Req, result{ack: wire.Ack{Req: s.Req, N: s.ID}})
		case wire.TError:
			e, derr := wire.DecodeError(f.Payload)
			if derr != nil {
				err = derr
				return
			}
			if e.Req == 0 {
				err = &RemoteError{Code: e.Code, Msg: e.Msg}
				return
			}
			c.reply(e.Req, result{werr: &e})
		case wire.TGoodbye:
			g, derr := wire.DecodeGoodbye(f.Payload)
			if derr != nil {
				err = derr
				return
			}
			select {
			case c.Goodbye <- g:
			default:
			}
		default:
			err = fmt.Errorf("server: unexpected frame %v", f.Type)
			return
		}
	}
}

func (c *Client) reply(req uint64, res result) {
	c.mu.Lock()
	ch := c.pending[req]
	delete(c.pending, req)
	c.mu.Unlock()
	if ch != nil {
		ch <- res
	}
}

// fail terminates the client, releasing every pending request and closing
// every subscription channel.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		if err == nil {
			err = errClientClosed
		}
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan result)
	subs := c.subs
	c.subs = make(map[uint64]*clientSubState)
	select {
	case <-c.done:
	default:
		close(c.done)
	}
	c.mu.Unlock()
	c.conn.Close()
	for _, ch := range pending {
		close(ch)
	}
	for _, st := range subs {
		st.terminate()
	}
}

// Err returns the terminal connection error, nil while the client is live.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close sends a Goodbye and closes the connection.
func (c *Client) Close() error {
	c.wmu.Lock()
	wire.WriteFrame(c.conn, wire.TGoodbye, wire.AppendGoodbye(nil, wire.Goodbye{Reason: "client done"}))
	c.wmu.Unlock()
	c.fail(errClientClosed)
	return nil
}

// call sends one request frame (payload only; framing happens here) and
// waits for its Ack or Error.
func (c *Client) call(t wire.Type, req uint64, payload []byte) (wire.Ack, error) {
	ch := make(chan result, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return wire.Ack{}, err
	}
	c.pending[req] = ch
	c.mu.Unlock()
	c.wmu.Lock()
	err := wire.WriteFrame(c.conn, t, payload)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req)
		c.mu.Unlock()
		return wire.Ack{}, err
	}
	res, ok := <-ch
	if !ok {
		return wire.Ack{}, c.Err()
	}
	if res.werr != nil {
		return wire.Ack{}, &RemoteError{Code: res.werr.Code, Msg: res.werr.Msg}
	}
	return res.ack, nil
}

// Ingest sends a batch of events and waits for the server's Ack. Event
// sources are tenant-relative stream keys; the server namespaces them.
func (c *Client) Ingest(evs []event.Event) (int, error) {
	req := c.req.next()
	ack, err := c.call(wire.TIngest, req,
		wire.AppendIngest(nil, wire.Ingest{Req: req, Events: evs}))
	if err != nil {
		return 0, err
	}
	return int(ack.N), nil
}

// ClientSub is a client-side subscription handle.
type ClientSub struct {
	// C streams the subscription's answers; it closes when the client
	// closes or the subscription is cancelled. Drain it — an undrained
	// subscription stalls the client's read loop.
	C <-chan wire.Answer

	id uint64
	c  *Client
}

// ID returns the wire subscription id.
func (s *ClientSub) ID() uint64 { return s.id }

// Subscribe opens a streaming subscription for a query name ("" for every
// query visible to the tenant). buf is the local answer buffer (default 64).
func (c *Client) Subscribe(query string, buf int) (*ClientSub, error) {
	if buf <= 0 {
		buf = 64
	}
	st := &clientSubState{ch: make(chan wire.Answer, buf), done: make(chan struct{})}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.subID++
	id := c.subID
	c.subs[id] = st
	c.mu.Unlock()

	req := c.req.next()
	_, err := c.call(wire.TSubscribe, req,
		wire.AppendSubscribe(nil, wire.Subscribe{Req: req, ID: id, Query: query}))
	if err != nil {
		c.mu.Lock()
		delete(c.subs, id)
		c.mu.Unlock()
		st.terminate()
		return nil, err
	}
	return &ClientSub{C: st.ch, id: id, c: c}, nil
}

// Unsubscribe cancels a subscription server-side and closes its channel.
func (c *Client) Unsubscribe(s *ClientSub) error {
	// Terminate locally first: if the read loop is blocked delivering into
	// this very subscription, that send must abort before the loop can
	// surface the Unsubscribe ack the call below waits for.
	c.mu.Lock()
	st := c.subs[s.id]
	delete(c.subs, s.id)
	c.mu.Unlock()
	if st != nil {
		st.terminate()
	}
	req := c.req.next()
	_, err := c.call(wire.TUnsubscribe, req,
		wire.AppendUnsubscribe(nil, wire.Unsubscribe{Req: req, ID: s.id}))
	return err
}

// RegisterQuery registers a pattern query under the tenant's namespace and
// returns the control-plane epoch it took effect under.
func (c *Client) RegisterQuery(name, pattern string, window int64) (uint64, error) {
	req := c.req.next()
	ack, err := c.call(wire.TRegisterQuery, req,
		wire.AppendRegisterQuery(nil, wire.RegisterQuery{Req: req, Name: name, Pattern: pattern, Window: window}))
	if err != nil {
		return 0, err
	}
	return ack.N, nil
}

// RegisterPrivate registers a private pattern type under the tenant's
// namespace and returns the control-plane epoch it took effect under.
func (c *Client) RegisterPrivate(name string, elements []string) (uint64, error) {
	req := c.req.next()
	ack, err := c.call(wire.TRegisterPrivate, req,
		wire.AppendRegisterPrivate(nil, wire.RegisterPrivate{Req: req, Name: name, Elements: elements}))
	if err != nil {
		return 0, err
	}
	return ack.N, nil
}

// errClientClosed is reported for requests issued after Close.
var errClientClosed = errors.New("server: client closed")
