// Quickstart: protect a private pattern while answering a target query.
//
// A passenger does not want trips near the hospital revealed; the city wants
// traffic-jam detections. Both patterns share the "near-hospital" event, so
// the jam query must be answered under pattern-level DP.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"patterndp"
)

func main() {
	// Setup phase (Fig. 2): the data subject registers the private pattern.
	private, err := patterndp.NewPatternType("hospital-trip",
		"enter-taxi", "near-hospital")
	if err != nil {
		log.Fatal(err)
	}

	// The chosen mechanism: uniform pattern-level PPM with budget ε = 1.
	ppm, err := patterndp.NewUniformPPM(1.0, private)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("private pattern %q: eps=%.2f split over %d elements\n",
		"hospital-trip", float64(ppm.TotalEpsilon()), private.Len())
	for _, el := range private.Elements {
		fmt.Printf("  element %-14s flip probability %.4f\n", el, ppm.FlipProb(el))
	}

	engine, err := patterndp.NewPrivateEngine(ppm, []patterndp.PatternType{private}, 42)
	if err != nil {
		log.Fatal(err)
	}

	// The data consumer registers its target query.
	err = engine.RegisterTarget(patterndp.Query{
		Name:    "traffic-jam",
		Pattern: patterndp.SeqTypes("near-hospital", "slow-speed"),
		Window:  10,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Service phase: raw events stream in.
	events := []patterndp.Event{
		patterndp.NewEvent("enter-taxi", 1),
		patterndp.NewEvent("near-hospital", 3),
		patterndp.NewEvent("slow-speed", 5), // window 0: jam near hospital
		patterndp.NewEvent("enter-taxi", 12),
		patterndp.NewEvent("slow-speed", 15), // window 1: slow but not near hospital
	}
	answers, err := engine.ProcessEvents(events, 10)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nreleased answers (perturbed where the private pattern is involved):")
	for _, a := range answers {
		fmt.Printf("  window %d [%d,%d): %-12s detected=%t\n",
			a.WindowIndex, a.Window.Start, a.Window.End, a.Query, a.Detected)
	}
	fmt.Println("\nnote: \"near-hospital\" is an element of the private pattern, so its")
	fmt.Println("indicator passes through randomized response; \"slow-speed\" is public")
	fmt.Println("and is never perturbed. Re-run to see different random outcomes.")
}
