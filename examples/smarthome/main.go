// Smart-home example: multi-event private patterns beyond GPS.
//
// A home's sensor stream contains door, motion, and appliance events. The
// resident wants the "nobody home" pattern (door-close followed by no-motion
// followed by lights-off) hidden from the energy-analytics consumer, which
// queries for appliance-heavy evenings. The two patterns share the
// lights-off event, so protection must degrade the analytics as little as
// possible — the job of the adaptive PPM.
//
// Run: go run ./examples/smarthome
package main

import (
	"fmt"
	"log"
	"math/rand"

	"patterndp"
)

func main() {
	// The private pattern: an absence routine.
	private, err := patterndp.NewPatternType("nobody-home",
		"door-close", "no-motion", "lights-off")
	if err != nil {
		log.Fatal(err)
	}
	// The consumer's target: evenings with heavy appliance use ending in
	// lights-off (overlapping the private pattern in one element).
	target := patterndp.SeqTypes("oven-on", "dishwasher-on", "lights-off")

	// Historical data: 300 evenings with realistic correlations.
	rng := rand.New(rand.NewSource(2024))
	var events []patterndp.Event
	const width = 100
	for day := 0; day < 300; day++ {
		base := patterndp.Timestamp(day * width)
		t := base
		add := func(ty patterndp.EventType) {
			events = append(events, patterndp.NewEvent(ty, t).WithSource("home-1"))
			t++
		}
		if rng.Float64() < 0.45 { // cooking evening
			add("oven-on")
			if rng.Float64() < 0.7 {
				add("dishwasher-on")
			}
		}
		if rng.Float64() < 0.35 { // resident leaves
			add("door-close")
			add("no-motion")
		}
		if rng.Float64() < 0.9 { // lights go off almost every night
			add("lights-off")
		}
	}
	windows := patterndp.WindowSlice(events, width)
	types := []patterndp.EventType{
		"door-close", "no-motion", "lights-off", "oven-on", "dishwasher-on",
	}
	history := patterndp.IndicatorWindows(windows, types)

	// Fit the adaptive PPM on the history.
	adaptive, err := patterndp.NewAdaptivePPM(
		patterndp.AdaptiveConfig{Epsilon: 1.5, Alpha: 0.5, Seed: 7},
		history, []patterndp.Expr{target}, private)
	if err != nil {
		log.Fatal(err)
	}

	uniform, err := patterndp.NewUniformPPM(1.5, private)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-element flip probabilities (eps=1.5 over 3 elements):")
	fmt.Printf("%-14s %-10s %-10s\n", "element", "uniform", "adaptive")
	for _, el := range private.Elements {
		fmt.Printf("%-14s %-10.4f %-10.4f\n", el, uniform.FlipProb(el), adaptive.FlipProb(el))
	}
	fmt.Printf("\nadaptive fit: %d committed steps, expected quality %.4f\n",
		adaptive.Iterations(), adaptive.FittedQuality())
	fmt.Println("\nthe fit moves budget toward \"lights-off\" — the only element the")
	fmt.Println("target query shares — and accepts more noise on the elements the")
	fmt.Println("analytics never look at.")

	// Serve one evening through the engine with the fitted mechanism.
	engine, err := patterndp.NewPrivateEngine(adaptive, []patterndp.PatternType{private}, 11)
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.RegisterTarget(patterndp.Query{
		Name: "appliance-evening", Pattern: target, Window: width,
	}); err != nil {
		log.Fatal(err)
	}
	evening := []patterndp.Event{
		patterndp.NewEvent("oven-on", 10),
		patterndp.NewEvent("dishwasher-on", 20),
		patterndp.NewEvent("door-close", 60),
		patterndp.NewEvent("no-motion", 70),
		patterndp.NewEvent("lights-off", 80),
	}
	answers, err := engine.ProcessEvents(evening, width)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntonight's released answer: %s detected=%t\n",
		answers[0].Query, answers[0].Detected)
}
