// Command cepdemo runs the trusted CEP engine over a simulated taxi-fleet
// stream twice — once without protection and once behind the uniform
// pattern-level PPM — and prints the detections side by side, making the
// privacy/quality trade-off visible.
//
// Usage:
//
//	cepdemo -taxis 20 -ticks 200 -eps 1.0
package main

import (
	"flag"
	"fmt"
	"os"

	"patterndp/internal/cep"
	"patterndp/internal/core"
	"patterndp/internal/dp"
	"patterndp/internal/event"
	"patterndp/internal/taxi"
)

func main() {
	var (
		taxis = flag.Int("taxis", 20, "fleet size")
		ticks = flag.Int("ticks", 200, "sampling periods to simulate")
		eps   = flag.Float64("eps", 1.0, "pattern-level privacy budget")
		seed  = flag.Int64("seed", 1, "random seed")
		wTick = flag.Int("window", 5, "window width in ticks")
		limit = flag.Int("limit", 15, "windows to print")
	)
	flag.Parse()
	if err := run(*taxis, *ticks, *eps, *seed, *wTick, *limit); err != nil {
		fmt.Fprintln(os.Stderr, "cepdemo:", err)
		os.Exit(1)
	}
}

func run(taxis_, ticks int, eps float64, seed int64, wTick, limit int) error {
	cfg := taxi.DefaultConfig(seed)
	cfg.NumTaxis = taxis_
	cfg.Ticks = ticks
	cfg.GridW, cfg.GridH = 8, 8
	ds, err := taxi.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("simulated %d taxis for %d ticks (%d GPS fixes)\n",
		cfg.NumTaxis, cfg.Ticks, len(ds.Events))
	fmt.Printf("private cells: %d, target cells: %d, overlap: %d\n",
		len(ds.PrivateCells), len(ds.TargetCells), len(ds.OverlapCells()))

	private := ds.PrivateTypes()
	ppm, err := core.NewUniformPPM(dp.Epsilon(eps), private...)
	if err != nil {
		return err
	}
	protected, err := core.NewPrivateEngine(ppm, private, seed)
	if err != nil {
		return err
	}
	clear, err := core.NewPrivateEngine(core.Identity{}, private, seed)
	if err != nil {
		return err
	}
	// One target query per target cell; print the aggregate per window.
	for i, c := range ds.TargetCells {
		q := cep.Query{
			Name:    fmt.Sprintf("target-%02d", i),
			Pattern: cep.E(c.Type()),
			Window:  1,
		}
		if err := protected.RegisterTarget(q); err != nil {
			return err
		}
		if err := clear.RegisterTarget(q); err != nil {
			return err
		}
	}
	ws := ds.Windows(event.Timestamp(wTick))
	protAns, err := protected.ProcessWindows(ws)
	if err != nil {
		return err
	}
	clearAns, err := clear.ProcessWindows(ws)
	if err != nil {
		return err
	}
	// Aggregate detections per window.
	nQ := len(ds.TargetCells)
	fmt.Printf("\n%-8s %-18s %-18s\n", "window", "true detections", "released detections")
	for w := 0; w < len(ws) && w < limit; w++ {
		trueCount, relCount := 0, 0
		for q := 0; q < nQ; q++ {
			if clearAns[w*nQ+q].Detected {
				trueCount++
			}
			if protAns[w*nQ+q].Detected {
				relCount++
			}
		}
		fmt.Printf("%-8d %-18d %-18d\n", w, trueCount, relCount)
	}
	fmt.Printf("\n(budget eps=%.2f per private cell pattern; higher eps tracks truth closer)\n", eps)
	return nil
}
