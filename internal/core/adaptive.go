package core

import (
	"fmt"
	"math/rand"

	"patterndp/internal/cep"
	"patterndp/internal/dp"
	"patterndp/internal/event"
)

// AdaptiveConfig parameterizes the adaptive PPM (Algorithm 1).
type AdaptiveConfig struct {
	// Epsilon is the total pattern-level budget per private pattern type.
	Epsilon dp.Epsilon
	// Alpha weighs precision against recall in the quality metric Q.
	Alpha float64
	// StepFactor scales the step size: δε = StepFactor · m · ε. The paper
	// suggests δε = mε/100, i.e. StepFactor = 0.01, the default when 0.
	StepFactor float64
	// MaxIters bounds the outer optimization loop (the paper's loop can
	// plateau without converging; we cap it). Defaults to 100 when 0.
	MaxIters int
	// Seed drives any sampled probability estimates during fitting,
	// keeping the fit deterministic.
	Seed int64
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.StepFactor == 0 {
		c.StepFactor = 0.01
	}
	if c.MaxIters == 0 {
		c.MaxIters = 100
	}
	return c
}

func (c AdaptiveConfig) validate() error {
	if !c.Epsilon.Valid() {
		return fmt.Errorf("core: invalid budget %v", c.Epsilon)
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("core: alpha %v outside [0,1]", c.Alpha)
	}
	if c.StepFactor < 0 {
		return fmt.Errorf("core: negative step factor %v", c.StepFactor)
	}
	if c.MaxIters < 0 {
		return fmt.Errorf("core: negative max iters %d", c.MaxIters)
	}
	return nil
}

// AdaptivePPM is the adaptive pattern-level PPM of Section V-B: it keeps the
// per-pattern total budget ε fixed but reallocates it across the pattern's
// elements with the bidirectional stepwise search of Algorithm 1, scoring
// candidate allocations by the expected data quality of the target queries
// over historical data (which data subjects grant the trusted engine access
// to under the system model).
//
// Implementation notes relative to the paper's pseudocode:
//   - Line 7 moves δε onto element i and takes δε/m from each other
//     element, which does not conserve Σε_i; we take δε/(m−1) instead so
//     the total budget is conserved exactly, and clamp at zero.
//   - Candidate allocations are scored with the exact expected quality
//     (ExpectedQuality) instead of a noisy simulated run, making the fit
//     deterministic.
//   - The loop requires strict improvement (the paper's ≥ admits infinite
//     plateau cycling) and is additionally bounded by MaxIters.
//
// With several private pattern types, each type's allocation is fitted in
// turn while the other types' perturbations are held fixed (coordinate
// descent over pattern types).
type AdaptivePPM struct {
	cfg     AdaptiveConfig
	private []PatternType
	dists   []*dp.Distribution
	flips   map[event.Type][]float64
	fitQ    float64
	iters   int
}

// NewAdaptivePPM fits the mechanism on historical windows. targets are the
// target-pattern expressions whose quality the fit maximizes; history holds
// the indicator windows of the historical data.
func NewAdaptivePPM(cfg AdaptiveConfig, history []IndicatorWindow, targets []cep.Expr, private ...PatternType) (*AdaptivePPM, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(private) == 0 {
		return nil, fmt.Errorf("core: adaptive PPM needs at least one private pattern type")
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("core: adaptive PPM needs at least one target expression")
	}
	if len(history) == 0 {
		return nil, fmt.Errorf("core: adaptive PPM needs historical windows")
	}
	a := &AdaptivePPM{cfg: cfg, private: private}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Line 1: start every pattern at the uniform allocation.
	for _, pt := range private {
		d, err := dp.UniformDistribution(cfg.Epsilon, pt.Len())
		if err != nil {
			return nil, err
		}
		a.dists = append(a.dists, d)
	}
	a.rebuildFlips()
	a.fitQ = ExpectedQuality(history, targets, a.FlipProbs(), cfg.Alpha, rng)

	// Coordinate descent over pattern types, Algorithm 1 within each.
	for k, pt := range private {
		q, iters := a.fitPattern(k, pt, history, targets, rng)
		a.fitQ = q
		a.iters += iters
	}
	return a, nil
}

// fitPattern runs Algorithm 1 for pattern k with all other patterns fixed.
// It returns the fitted expected quality and the number of committed steps.
func (a *AdaptivePPM) fitPattern(k int, pt PatternType, history []IndicatorWindow, targets []cep.Expr, rng *rand.Rand) (float64, int) {
	m := pt.Len()
	if m < 2 {
		// Nothing to reallocate; uniform is the only allocation.
		return a.fitQ, 0
	}
	// Line 2: step size δε = StepFactor · m · ε.
	step := dp.Epsilon(a.cfg.StepFactor * float64(m) * float64(a.cfg.Epsilon))
	if step <= 0 {
		return a.fitQ, 0
	}
	eval := func(d *dp.Distribution) float64 {
		saved := a.dists[k]
		a.dists[k] = d
		a.rebuildFlips()
		q := ExpectedQuality(history, targets, a.FlipProbs(), a.cfg.Alpha, rng)
		a.dists[k] = saved
		a.rebuildFlips()
		return q
	}
	bestQ := a.fitQ
	iters := 0
	for iters < a.cfg.MaxIters {
		// Lines 6–9: probe a step onto each element.
		bestI := -1
		bestCandQ := bestQ
		var bestCand *dp.Distribution
		for i := 0; i < m; i++ {
			cand := a.dists[k].Clone()
			if cand.Shift(i, step) == 0 {
				continue
			}
			if q := eval(cand); q > bestCandQ+1e-12 {
				bestI, bestCandQ, bestCand = i, q, cand
			}
		}
		// Lines 10–12: commit the best improving move, if any.
		if bestI < 0 {
			break
		}
		a.dists[k] = bestCand
		bestQ = bestCandQ
		iters++
	}
	a.rebuildFlips()
	return bestQ, iters
}

// rebuildFlips recomputes the per-type flip lists from the per-pattern
// element allocations. Duplicate element types within or across patterns
// contribute one independent flip each.
func (a *AdaptivePPM) rebuildFlips() {
	flips := make(map[event.Type][]float64)
	for k, pt := range a.private {
		probs := a.dists[k].FlipProbs()
		for i, t := range pt.Elements {
			flips[t] = append(flips[t], probs[i])
		}
	}
	a.flips = flips
}

// Name implements Mechanism.
func (a *AdaptivePPM) Name() string { return "adaptive" }

// TotalEpsilon implements Mechanism.
func (a *AdaptivePPM) TotalEpsilon() dp.Epsilon { return a.cfg.Epsilon }

// Private returns the configured private pattern types.
func (a *AdaptivePPM) Private() []PatternType { return a.private }

// Distribution returns the fitted allocation for pattern k.
func (a *AdaptivePPM) Distribution(k int) *dp.Distribution { return a.dists[k].Clone() }

// FittedQuality returns the expected quality of the final allocation on the
// historical data.
func (a *AdaptivePPM) FittedQuality() float64 { return a.fitQ }

// Iterations returns the number of committed optimization steps.
func (a *AdaptivePPM) Iterations() int { return a.iters }

// FlipProb returns the effective flip probability for one event type (the
// composition of all flips claiming it).
func (a *AdaptivePPM) FlipProb(t event.Type) float64 {
	eff := 0.0
	for _, p := range a.flips[t] {
		eff = eff*(1-p) + p*(1-eff)
	}
	return eff
}

// FlipProbs returns the effective per-type flip probabilities.
func (a *AdaptivePPM) FlipProbs() map[event.Type]float64 {
	out := make(map[event.Type]float64, len(a.flips))
	for t := range a.flips {
		out[t] = a.FlipProb(t)
	}
	return out
}

// PerturbWindow perturbs one window's indicators. Types are processed in
// sorted order so a seeded rng yields reproducible releases.
func (a *AdaptivePPM) PerturbWindow(rng *rand.Rand, present map[event.Type]bool) map[event.Type]bool {
	out := make(map[event.Type]bool, len(present))
	for _, t := range SortedTypes(present) {
		bit := present[t]
		for _, p := range a.flips[t] {
			if rng.Float64() < p {
				bit = !bit
			}
		}
		out[t] = bit
	}
	return out
}

// Run implements Mechanism.
func (a *AdaptivePPM) Run(rng *rand.Rand, wins []IndicatorWindow) []map[event.Type]bool {
	out := make([]map[event.Type]bool, len(wins))
	for i, w := range wins {
		out[i] = a.PerturbWindow(rng, w.Present)
	}
	return out
}
