package stream

import (
	"testing"
	"testing/quick"

	"patterndp/internal/event"
)

func TestFromSliceCollect(t *testing.T) {
	in := []int{1, 2, 3}
	got := Collect(FromSlice(in))
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Collect = %v", got)
	}
}

func TestFromSliceEmpty(t *testing.T) {
	if got := Collect(FromSlice[int](nil)); got != nil {
		t.Errorf("empty stream Collect = %v, want nil", got)
	}
}

func TestFromFunc(t *testing.T) {
	done := make(chan struct{})
	defer close(done)
	i := 0
	s := FromFunc(done, func() (int, bool) {
		i++
		return i, i <= 4
	})
	got := Collect(s)
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
}

func TestFromFuncCancel(t *testing.T) {
	done := make(chan struct{})
	s := FromFunc(done, func() (int, bool) { return 1, true })
	<-s
	close(done)
	// The goroutine should eventually exit; draining remaining buffered
	// sends must terminate.
	for range s {
	}
}

func TestMapFilterTake(t *testing.T) {
	done := make(chan struct{})
	defer close(done)
	s := FromSlice([]int{1, 2, 3, 4, 5, 6})
	doubled := Map(done, s, func(v int) int { return v * 2 })
	evens := Filter(done, doubled, func(v int) bool { return v%4 == 0 })
	got := Collect(Take(done, evens, 2))
	if len(got) != 2 || got[0] != 4 || got[1] != 8 {
		t.Errorf("pipeline = %v, want [4 8]", got)
	}
}

func TestCollectN(t *testing.T) {
	got := CollectN(FromSlice([]int{1, 2, 3}), 2)
	if len(got) != 2 {
		t.Errorf("CollectN = %v", got)
	}
	got = CollectN(FromSlice([]int{1}), 5)
	if len(got) != 1 {
		t.Errorf("CollectN beyond stream = %v", got)
	}
}

func TestFanOutDuplicates(t *testing.T) {
	done := make(chan struct{})
	defer close(done)
	outs := FanOut(done, FromSlice([]int{1, 2, 3}), 3)
	results := make([][]int, 3)
	ch := make(chan struct{})
	for i, o := range outs {
		go func(i int, o Stream[int]) {
			results[i] = Collect(o)
			ch <- struct{}{}
		}(i, o)
	}
	for range outs {
		<-ch
	}
	for i, r := range results {
		if len(r) != 3 || r[0] != 1 || r[2] != 3 {
			t.Errorf("branch %d = %v", i, r)
		}
	}
}

func TestTee(t *testing.T) {
	done := make(chan struct{})
	defer close(done)
	a, b := Tee(done, FromSlice([]int{7, 8}))
	var ra, rb []int
	doneCh := make(chan struct{})
	go func() { ra = Collect(a); doneCh <- struct{}{} }()
	go func() { rb = Collect(b); doneCh <- struct{}{} }()
	<-doneCh
	<-doneCh
	if len(ra) != 2 || len(rb) != 2 || ra[1] != 8 || rb[0] != 7 {
		t.Errorf("tee = %v / %v", ra, rb)
	}
}

func evs(times ...int64) []event.Event {
	out := make([]event.Event, len(times))
	for i, ts := range times {
		out[i] = event.New("e", event.Timestamp(ts))
	}
	return out
}

func TestMergeEventsOrdered(t *testing.T) {
	done := make(chan struct{})
	defer close(done)
	s1 := FromSlice([]event.Event{event.New("a", 1), event.New("a", 4)})
	s2 := FromSlice([]event.Event{event.New("b", 2), event.New("b", 3)})
	got := Collect(MergeEvents(done, s1, s2))
	times := []event.Timestamp{1, 2, 3, 4}
	if len(got) != 4 {
		t.Fatalf("merged %d events", len(got))
	}
	for i, e := range got {
		if e.Time != times[i] {
			t.Errorf("pos %d time %d, want %d", i, e.Time, times[i])
		}
	}
}

func TestMergeEventsTieBreak(t *testing.T) {
	done := make(chan struct{})
	defer close(done)
	s1 := FromSlice([]event.Event{event.New("z", 1).WithSource("s2")})
	s2 := FromSlice([]event.Event{event.New("a", 1).WithSource("s1")})
	got := Collect(MergeEvents(done, s1, s2))
	if got[0].Source != "s1" {
		t.Errorf("tie break: got %v first", got[0])
	}
}

func TestMergeEventsEmptyInputs(t *testing.T) {
	done := make(chan struct{})
	defer close(done)
	empty := FromSlice[event.Event](nil)
	s := FromSlice([]event.Event{event.New("a", 1)})
	got := Collect(MergeEvents(done, empty, s))
	if len(got) != 1 {
		t.Errorf("merge with empty = %v", got)
	}
	if got2 := Collect(MergeEvents(done)); got2 != nil {
		t.Errorf("merge of nothing = %v", got2)
	}
}

func TestMergeSortedSlices(t *testing.T) {
	a := []event.Event{event.New("a", 1), event.New("a", 5)}
	b := []event.Event{event.New("b", 2), event.New("b", 6)}
	got := MergeSortedSlices(a, b)
	if len(got) != 4 || got[0].Time != 1 || got[3].Time != 6 {
		t.Errorf("merged = %v", got)
	}
}

func TestMergeSortedSlicesProperty(t *testing.T) {
	f := func(a, b []int8) bool {
		mk := func(xs []int8, src string) []event.Event {
			out := make([]event.Event, len(xs))
			for i, x := range xs {
				out[i] = event.New("e", event.Timestamp(x)).WithSource(src)
			}
			event.SortEvents(out)
			return out
		}
		m := MergeSortedSlices(mk(a, "a"), mk(b, "b"))
		if len(m) != len(a)+len(b) {
			return false
		}
		for i := 1; i < len(m); i++ {
			if m[i].Before(m[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTumblingWindows(t *testing.T) {
	done := make(chan struct{})
	defer close(done)
	in := FromSlice(evs(0, 1, 5, 12, 13))
	got := Collect(Tumbling(done, in, 5))
	// Windows: [0,5) -> 2 events, [5,10) -> 1, [10,15) -> 2.
	if len(got) != 3 {
		t.Fatalf("windows = %d, want 3", len(got))
	}
	counts := []int{2, 1, 2}
	for i, w := range got {
		if len(w.Events) != counts[i] {
			t.Errorf("window %d has %d events, want %d", i, len(w.Events), counts[i])
		}
		if w.End-w.Start != 5 {
			t.Errorf("window %d width %d", i, w.End-w.Start)
		}
	}
}

func TestTumblingEmitsGapWindows(t *testing.T) {
	done := make(chan struct{})
	defer close(done)
	in := FromSlice(evs(0, 22))
	got := Collect(Tumbling(done, in, 10))
	// [0,10) has the first event; [10,20) is an empty gap; [20,30) has the second.
	if len(got) != 3 {
		t.Fatalf("windows = %d, want 3 (gap window must be emitted)", len(got))
	}
	if len(got[1].Events) != 0 {
		t.Errorf("gap window not empty: %v", got[1].Events)
	}
}

func TestTumblingPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for width <= 0")
		}
	}()
	done := make(chan struct{})
	defer close(done)
	Tumbling(done, FromSlice[event.Event](nil), 0)
}

func TestSlidingWindows(t *testing.T) {
	done := make(chan struct{})
	defer close(done)
	in := FromSlice(evs(0, 1, 2, 3))
	got := Collect(Sliding(done, in, 2, 1))
	// Each event at t belongs to windows starting at t-1 and t.
	for _, w := range got {
		for _, e := range w.Events {
			if e.Time < w.Start || e.Time >= w.End {
				t.Errorf("event %v outside window [%d,%d)", e, w.Start, w.End)
			}
		}
	}
	// Count memberships: each event must appear in exactly width/step = 2 windows.
	memb := map[event.Timestamp]int{}
	for _, w := range got {
		for _, e := range w.Events {
			memb[e.Time]++
		}
	}
	for ts, n := range memb {
		if n != 2 {
			t.Errorf("event at %d in %d windows, want 2", ts, n)
		}
	}
}

func TestSlidingPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for width not multiple of step")
		}
	}()
	done := make(chan struct{})
	defer close(done)
	Sliding(done, FromSlice[event.Event](nil), 3, 2)
}

func TestWindowSlice(t *testing.T) {
	ws := WindowSlice(evs(0, 3, 11), 5)
	if len(ws) != 3 {
		t.Fatalf("windows = %d, want 3", len(ws))
	}
	if len(ws[0].Events) != 2 || len(ws[1].Events) != 0 || len(ws[2].Events) != 1 {
		t.Errorf("window contents wrong: %v", ws)
	}
}

func TestWindowSliceEmpty(t *testing.T) {
	if ws := WindowSlice(nil, 5); ws != nil {
		t.Errorf("WindowSlice(nil) = %v", ws)
	}
}

func TestWindowContainsCountTypes(t *testing.T) {
	w := Window{Start: 0, End: 10, Events: []event.Event{
		event.New("a", 1), event.New("a", 2), event.New("b", 3),
	}}
	if !w.Contains("a") || w.Contains("z") {
		t.Error("Contains broken")
	}
	if w.Count("a") != 2 || w.Count("b") != 1 || w.Count("z") != 0 {
		t.Error("Count broken")
	}
	ts := w.Types()
	if len(ts) != 2 || !ts["a"] || !ts["b"] {
		t.Errorf("Types = %v", ts)
	}
}
