package server

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"

	"patterndp/internal/cep"
	"patterndp/internal/core"
	"patterndp/internal/event"
	"patterndp/internal/runtime"
	"patterndp/internal/wire"
)

// session is one tenant connection: a request loop reading frames, a single
// writer goroutine draining the bounded outbound answer queue, and one
// bridge goroutine per live subscription moving answers from the runtime bus
// into the queue.
type session struct {
	srv  *Server
	conn net.Conn

	tenant *tenantState
	prefix string // "tenant/" once authenticated

	// wmu serializes frame writes; each frame is one Write call, so frames
	// never interleave on the wire.
	wmu sync.Mutex

	// out is the bounded outbound answer queue. Bridges enqueue without
	// blocking (dropping on overflow); the writer goroutine drains it.
	out  chan wire.Answer
	done chan struct{}
	once sync.Once

	mu   sync.Mutex
	subs map[uint64]*runtime.Subscription
	wg   sync.WaitGroup // bridge + writer goroutines

	scratch []event.Event // ingest decode buffer, reused per request
}

func newSession(s *Server, conn net.Conn) *session {
	return &session{
		srv:  s,
		conn: conn,
		out:  make(chan wire.Answer, s.cfg.OutboundQueue),
		done: make(chan struct{}),
		subs: make(map[uint64]*runtime.Subscription),
	}
}

// close tears the session down exactly once: the writer and every bridge are
// released, every runtime subscription is cancelled (so the bus never stalls
// on a dead session), and the connection is closed (unblocking the request
// loop).
func (ss *session) close() {
	ss.once.Do(func() {
		close(ss.done)
		ss.mu.Lock()
		subs := ss.subs
		ss.subs = nil
		ss.mu.Unlock()
		for _, sub := range subs {
			sub.Cancel()
		}
		ss.conn.Close()
	})
}

// run serves the connection until the peer disconnects, a protocol error
// occurs, or the server closes the session. It returns only after every
// session goroutine has exited.
func (ss *session) run() {
	defer func() {
		ss.close()
		ss.wg.Wait()
		if ss.tenant != nil {
			ss.tenant.sessions.Dec()
		}
	}()
	r := wire.NewReader(ss.conn)
	if !ss.handshake(r) {
		return
	}
	ss.wg.Add(1)
	go ss.writeLoop()
	for {
		f, err := r.Next()
		if err != nil {
			return
		}
		if !ss.dispatch(f) {
			return
		}
	}
}

// handshake performs Hello → Welcome, authenticating the tenant.
func (ss *session) handshake(r *wire.Reader) bool {
	f, err := r.Next()
	if err != nil {
		return false
	}
	if f.Type != wire.THello {
		ss.sendError(0, wire.CodeProto, fmt.Sprintf("expected hello, got %v", f.Type))
		return false
	}
	h, err := wire.DecodeHello(f.Payload)
	if err != nil {
		ss.sendError(0, wire.CodeProto, err.Error())
		return false
	}
	if h.Proto < 1 {
		ss.sendError(0, wire.CodeProto, fmt.Sprintf("bad protocol version %d", h.Proto))
		return false
	}
	t, err := ss.srv.cfg.Auth(h.Token)
	if err == nil && (t.ID == "" || strings.ContainsRune(t.ID, namespaceDelim)) {
		err = fmt.Errorf("auth returned invalid tenant id %q", t.ID)
	}
	if err != nil {
		ss.srv.authFailures.Inc()
		ss.sendError(0, wire.CodeAuth, err.Error())
		return false
	}
	ss.tenant = ss.srv.tenantFor(t)
	ss.tenant.sessions.Inc()
	ss.prefix = t.ID + string(namespaceDelim)
	rt := ss.srv.cfg.Runtime
	var shared []string
	for _, q := range rt.Queries() {
		if !strings.ContainsRune(q.Name, namespaceDelim) {
			shared = append(shared, q.Name)
		}
	}
	w := wire.Welcome{
		Tenant:  t.ID,
		Shards:  uint64(len(rt.Snapshot().Shards)),
		Grant:   float64(rt.BudgetGrant()),
		Queries: shared,
	}
	return ss.writeFrame(wire.TWelcome, wire.AppendWelcome(nil, w)) == nil
}

// dispatch handles one request frame. It returns false when the session
// should end (goodbye or unrecoverable protocol error).
func (ss *session) dispatch(f wire.Frame) bool {
	switch f.Type {
	case wire.TIngest:
		return ss.handleIngest(f.Payload)
	case wire.TSubscribe:
		return ss.handleSubscribe(f.Payload)
	case wire.TUnsubscribe:
		return ss.handleUnsubscribe(f.Payload)
	case wire.TRegisterQuery:
		return ss.handleRegisterQuery(f.Payload)
	case wire.TRegisterPrivate:
		return ss.handleRegisterPrivate(f.Payload)
	case wire.TGoodbye:
		return false
	default:
		ss.sendError(0, wire.CodeProto, fmt.Sprintf("unexpected frame %v", f.Type))
		return false
	}
}

func (ss *session) handleIngest(payload []byte) bool {
	in, err := wire.DecodeIngest(payload, ss.scratch[:0])
	if err != nil {
		ss.sendError(0, wire.CodeProto, err.Error())
		return false
	}
	ss.scratch = in.Events
	if ss.srv.Draining() {
		ss.sendError(in.Req, wire.CodeDraining, "server draining")
		return true
	}
	// Namespace every event's stream key under the tenant before the batch
	// reaches the shared runtime.
	keys := make(map[string]struct{})
	for i := range in.Events {
		in.Events[i].Source = ss.prefix + in.Events[i].Source
		keys[in.Events[i].Source] = struct{}{}
	}
	if err := ss.tenant.admitStreams(keys); err != nil {
		ss.sendError(in.Req, wire.CodeQuota, err.Error())
		return true
	}
	if err := ss.srv.cfg.Runtime.IngestBatch(in.Events); err != nil {
		code := wire.CodeInternal
		if ss.srv.Draining() {
			code = wire.CodeDraining
		}
		ss.sendError(in.Req, code, err.Error())
		return true
	}
	ss.tenant.eventsIn.Add(int64(len(in.Events)))
	return ss.sendAck(in.Req, uint64(len(in.Events)))
}

func (ss *session) handleSubscribe(payload []byte) bool {
	req, err := wire.DecodeSubscribe(payload)
	if err != nil {
		ss.sendError(0, wire.CodeProto, err.Error())
		return false
	}
	ss.mu.Lock()
	_, dup := ss.subs[req.ID]
	ss.mu.Unlock()
	if dup {
		ss.sendError(req.Req, wire.CodeInvalid, fmt.Sprintf("subscription id %d in use", req.ID))
		return true
	}
	rt := ss.srv.cfg.Runtime
	var sub *runtime.Subscription
	if req.Query == "" {
		sub, err = rt.Subscribe("")
	} else {
		// Tenant-registered names shadow shared names.
		sub, err = rt.Subscribe(ss.prefix + req.Query)
		if err != nil && errorsIsUnknownQuery(err) {
			sub, err = rt.Subscribe(req.Query)
		}
	}
	if err != nil {
		code := wire.CodeInternal
		if errorsIsUnknownQuery(err) {
			code = wire.CodeUnknownQuery
		}
		ss.sendError(req.Req, code, err.Error())
		return true
	}
	ss.mu.Lock()
	if ss.subs == nil { // session closed while subscribing
		ss.mu.Unlock()
		sub.Cancel()
		return false
	}
	ss.subs[req.ID] = sub
	ss.wg.Add(1)
	ss.mu.Unlock()
	go ss.bridge(req.ID, sub)
	return ss.writeFrame(wire.TSubscribed,
		wire.AppendSubscribed(nil, wire.Subscribed{Req: req.Req, ID: req.ID})) == nil
}

func (ss *session) handleUnsubscribe(payload []byte) bool {
	req, err := wire.DecodeUnsubscribe(payload)
	if err != nil {
		ss.sendError(0, wire.CodeProto, err.Error())
		return false
	}
	ss.mu.Lock()
	sub := ss.subs[req.ID]
	delete(ss.subs, req.ID)
	ss.mu.Unlock()
	if sub == nil {
		ss.sendError(req.Req, wire.CodeInvalid, fmt.Sprintf("unknown subscription id %d", req.ID))
		return true
	}
	sub.Cancel()
	return ss.sendAck(req.Req, 0)
}

func (ss *session) handleRegisterQuery(payload []byte) bool {
	req, err := wire.DecodeRegisterQuery(payload)
	if err != nil {
		ss.sendError(0, wire.CodeProto, err.Error())
		return false
	}
	if ss.srv.Draining() {
		ss.sendError(req.Req, wire.CodeDraining, "server draining")
		return true
	}
	if bad := validName(req.Name); bad != nil {
		ss.sendError(req.Req, wire.CodeInvalid, bad.Error())
		return true
	}
	q, err := cep.ParseQuery(ss.prefix+req.Name, req.Pattern, event.Timestamp(req.Window))
	if err != nil {
		ss.sendError(req.Req, wire.CodeInvalid, err.Error())
		return true
	}
	epoch, err := ss.srv.cfg.Runtime.RegisterQuery(q)
	if err != nil {
		ss.sendError(req.Req, wire.CodeInternal, err.Error())
		return true
	}
	return ss.sendAck(req.Req, uint64(epoch))
}

func (ss *session) handleRegisterPrivate(payload []byte) bool {
	req, err := wire.DecodeRegisterPrivate(payload)
	if err != nil {
		ss.sendError(0, wire.CodeProto, err.Error())
		return false
	}
	if ss.srv.Draining() {
		ss.sendError(req.Req, wire.CodeDraining, "server draining")
		return true
	}
	if bad := validName(req.Name); bad != nil {
		ss.sendError(req.Req, wire.CodeInvalid, bad.Error())
		return true
	}
	elems := make([]event.Type, len(req.Elements))
	for i, e := range req.Elements {
		elems[i] = event.Type(e)
	}
	pt, err := core.NewPatternType(ss.prefix+req.Name, elems...)
	if err != nil {
		ss.sendError(req.Req, wire.CodeInvalid, err.Error())
		return true
	}
	epoch, err := ss.srv.cfg.Runtime.RegisterPrivate(pt)
	if err != nil {
		ss.sendError(req.Req, wire.CodeInternal, err.Error())
		return true
	}
	return ss.sendAck(req.Req, uint64(epoch))
}

// bridge moves one subscription's answers into the outbound queue. It never
// blocks: an answer that finds the queue full is dropped and counted, so a
// slow connection only ever costs itself. Answers from other tenants'
// streams are filtered here — this is the isolation boundary for shared and
// subscribe-all queries — and namespace prefixes are stripped before the
// wire.
func (ss *session) bridge(id uint64, sub *runtime.Subscription) {
	defer ss.wg.Done()
	for a := range sub.C() {
		stream, ok := strings.CutPrefix(a.Stream, ss.prefix)
		if !ok {
			continue
		}
		query := a.Query
		if cut, ok := strings.CutPrefix(query, ss.prefix); ok {
			query = cut
		} else if strings.ContainsRune(query, namespaceDelim) {
			// Another tenant's registered query, evaluated over this
			// tenant's stream by the shared runtime: neither side may see
			// the cross product, so it is filtered on both bridges.
			continue
		}
		wa := wire.Answer{
			Sub:              id,
			Stream:           stream,
			Query:            query,
			Epoch:            uint64(a.Epoch),
			WindowIndex:      uint64(a.WindowIndex),
			Start:            int64(a.Window.Start),
			End:              int64(a.Window.End),
			Detected:         a.Detected,
			Suppressed:       a.Suppressed,
			SpentEpsilon:     float64(a.SpentEpsilon),
			RemainingEpsilon: float64(a.RemainingEpsilon),
		}
		select {
		case ss.out <- wa:
		default:
			ss.tenant.answersDropped.Inc()
		}
	}
}

// writeLoop is the session's single answer writer: it drains the outbound
// queue onto the connection, reusing one encode buffer.
func (ss *session) writeLoop() {
	defer ss.wg.Done()
	var buf []byte
	for {
		select {
		case wa := <-ss.out:
			buf = wire.AppendFrame(buf[:0], wire.TAnswer, wire.AppendAnswer(nil, wa))
			ss.wmu.Lock()
			_, err := ss.conn.Write(buf)
			ss.wmu.Unlock()
			if err != nil {
				return
			}
			ss.tenant.answersSent.Inc()
		case <-ss.done:
			return
		}
	}
}

// writeFrame writes one control frame, serialized against the answer writer.
func (ss *session) writeFrame(t wire.Type, payload []byte) error {
	ss.wmu.Lock()
	defer ss.wmu.Unlock()
	return wire.WriteFrame(ss.conn, t, payload)
}

func (ss *session) sendAck(req, n uint64) bool {
	return ss.writeFrame(wire.TAck, wire.AppendAck(nil, wire.Ack{Req: req, N: n})) == nil
}

func (ss *session) sendError(req uint64, code uint8, msg string) {
	ss.writeFrame(wire.TError, wire.AppendError(nil, wire.Error{Req: req, Code: code, Msg: msg}))
}

// goodbye announces an orderly server-side close (drain) without tearing the
// session down: the client keeps draining answers and closes when done.
func (ss *session) goodbye(reason string) {
	ss.writeFrame(wire.TGoodbye, wire.AppendGoodbye(nil, wire.Goodbye{Reason: reason}))
}

// validName vets a tenant-relative name for registration.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("empty name")
	}
	if strings.ContainsRune(name, namespaceDelim) {
		return fmt.Errorf("name %q contains %q", name, string(namespaceDelim))
	}
	return nil
}

func errorsIsUnknownQuery(err error) bool {
	return errors.Is(err, runtime.ErrUnknownQuery)
}
