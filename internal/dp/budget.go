package dp

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Sum is a Neumaier-compensated running sum: each Add tracks the rounding
// error the naive addition lost, so a long run of spends — including tiny
// spends absorbed entirely by a large partial sum — accumulates with an error
// of one ulp instead of drifting by O(n) ulps. The zero value is an empty
// sum. Sum is not safe for concurrent use; it is the single-writer
// accumulator behind Accountant and the streaming ledger.
type Sum struct {
	s, c float64
}

// Add accumulates x.
func (k *Sum) Add(x float64) {
	t := k.s + x
	if math.Abs(k.s) >= math.Abs(x) {
		k.c += (k.s - t) + x
	} else {
		k.c += (x - t) + k.s
	}
	k.s = t
}

// Value returns the compensated sum.
func (k Sum) Value() float64 { return k.s + k.c }

// Accountant tracks a total privacy budget and the amounts spent against it,
// keyed by a free-form label (an event type, a timestamp, a mechanism name).
// Sequential composition applies: total spend is the sum of all spends.
// Accountant is safe for concurrent use.
type Accountant struct {
	mu    sync.Mutex
	total Epsilon
	spent map[string]Epsilon
	// sum is the compensated running total of all spends. The per-key map
	// is kept for attribution; enforcement reads the compensated sum, so
	// rounding drift from many small spends cannot creep past total before
	// ErrBudgetExhausted fires (nor exhaust the budget early).
	sum Sum
}

// NewAccountant creates an accountant with the given total budget.
func NewAccountant(total Epsilon) (*Accountant, error) {
	if !total.Valid() {
		return nil, fmt.Errorf("dp: invalid total budget %v", total)
	}
	return &Accountant{total: total, spent: make(map[string]Epsilon)}, nil
}

// Total returns the configured total budget.
func (a *Accountant) Total() Epsilon { return a.total }

// Spent returns the cumulative spend across all keys.
func (a *Accountant) Spent() Epsilon {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spentLocked()
}

func (a *Accountant) spentLocked() Epsilon {
	return Epsilon(a.sum.Value())
}

// Remaining returns the unspent budget (never negative).
func (a *Accountant) Remaining() Epsilon {
	a.mu.Lock()
	defer a.mu.Unlock()
	rem := a.total - a.spentLocked()
	if rem < 0 {
		return 0
	}
	return rem
}

// SpendTolerance returns the float-rounding slack Spend allows on a total
// budget: a few ulps, so an exact split (m spends of total/m) always fits
// while anything past one more representable spend is rejected. The old
// fixed 1e-9 tolerance let accumulated rounding drift admit real over-spends.
func SpendTolerance(total Epsilon) float64 {
	return math.Abs(float64(total)) * 1e-15
}

// Spend records a spend under key. It fails with ErrBudgetExhausted when the
// spend would exceed the total. The running total is a compensated Sum and
// the comparison allows only ulp-scale slack (SpendTolerance), so repeated
// tiny spends can neither drift past the total unnoticed nor be absorbed
// into a large partial sum and spend forever for free.
func (a *Accountant) Spend(key string, eps Epsilon) error {
	if !eps.Valid() {
		return fmt.Errorf("dp: invalid spend %v", eps)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	next := a.sum
	next.Add(float64(eps))
	if next.Value() > float64(a.total)+SpendTolerance(a.total) {
		return fmt.Errorf("%w: spent %.6g + %.6g > total %.6g",
			ErrBudgetExhausted, float64(a.spentLocked()), float64(eps), float64(a.total))
	}
	a.sum = next
	a.spent[key] += eps
	return nil
}

// SpentOn returns the spend recorded under key.
func (a *Accountant) SpentOn(key string) Epsilon {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent[key]
}

// Keys returns all spend keys in sorted order.
func (a *Accountant) Keys() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.spent))
	for k := range a.spent {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Reset clears all recorded spends.
func (a *Accountant) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spent = make(map[string]Epsilon)
	a.sum = Sum{}
}

// Distribution is an allocation of a total budget across m items. It is the
// vector (ε1, …, εm) with Σεi = ε that both PPMs manage.
type Distribution struct {
	parts []Epsilon
}

// UniformDistribution splits total evenly across m items (Fig. 3).
func UniformDistribution(total Epsilon, m int) (*Distribution, error) {
	if !total.Valid() {
		return nil, fmt.Errorf("dp: invalid total budget %v", total)
	}
	if m <= 0 {
		return nil, fmt.Errorf("dp: distribution over %d items", m)
	}
	parts := make([]Epsilon, m)
	each := total / Epsilon(m)
	for i := range parts {
		parts[i] = each
	}
	return &Distribution{parts: parts}, nil
}

// NewDistribution adopts an explicit allocation. Parts must be non-negative.
func NewDistribution(parts []Epsilon) (*Distribution, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("dp: empty distribution")
	}
	cp := make([]Epsilon, len(parts))
	for i, p := range parts {
		if !p.Valid() {
			return nil, fmt.Errorf("dp: invalid part %d = %v", i, p)
		}
		cp[i] = p
	}
	return &Distribution{parts: cp}, nil
}

// Len returns the number of items.
func (d *Distribution) Len() int { return len(d.parts) }

// Part returns εi.
func (d *Distribution) Part(i int) Epsilon { return d.parts[i] }

// Parts returns a copy of the allocation vector.
func (d *Distribution) Parts() []Epsilon {
	out := make([]Epsilon, len(d.parts))
	copy(out, d.parts)
	return out
}

// Total returns Σεi.
func (d *Distribution) Total() Epsilon {
	var sum Epsilon
	for _, p := range d.parts {
		sum += p
	}
	return sum
}

// Set replaces εi, clamping to [0, ∞).
func (d *Distribution) Set(i int, eps Epsilon) {
	if eps < 0 {
		eps = 0
	}
	d.parts[i] = eps
}

// Shift moves delta of budget onto item i, taking it evenly from all other
// items (the inner move of Algorithm 1, line 7). Amounts are clamped so no
// part goes negative; the actual shifted amount is returned.
func (d *Distribution) Shift(i int, delta Epsilon) Epsilon {
	if len(d.parts) < 2 || delta <= 0 {
		return 0
	}
	per := delta / Epsilon(len(d.parts)-1)
	var taken Epsilon
	for j := range d.parts {
		if j == i {
			continue
		}
		t := per
		if d.parts[j] < t {
			t = d.parts[j]
		}
		d.parts[j] -= t
		taken += t
	}
	d.parts[i] += taken
	return taken
}

// Clone returns a deep copy.
func (d *Distribution) Clone() *Distribution {
	return &Distribution{parts: d.Parts()}
}

// FlipProbs converts the allocation into per-item randomized-response flip
// probabilities p_i = 1/(1+e^{ε_i}).
func (d *Distribution) FlipProbs() []float64 {
	out := make([]float64, len(d.parts))
	for i, eps := range d.parts {
		out[i] = 1 / (1 + math.Exp(float64(eps)))
	}
	return out
}

// ComposedEpsilon computes the pattern-level budget guaranteed by Theorem 1
// for per-item flip probabilities probs: Σ ln((1−p_i)/p_i).
func ComposedEpsilon(probs []float64) Epsilon {
	var sum float64
	for _, p := range probs {
		if p <= 0 {
			return Epsilon(math.Inf(1))
		}
		sum += math.Log((1 - p) / p)
	}
	return Epsilon(sum)
}
