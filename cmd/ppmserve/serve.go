// Network serving modes: -listen exposes the runtime to remote tenants over
// the wire protocol, -connect replays the synthetic feed as one such tenant.
//
//	ppmserve -listen :7070 -budget 100 -max-streams 64
//	ppmserve -listen :7070 -heartbeat 5s -resume-window 1m -replay-buffer 512
//	ppmserve -connect localhost:7070 -tenant alice -streams 8 -windows 200 -reconnect
//
// The server serves the dataset's target queries as shared queries every
// tenant may subscribe to; tenants can additionally register their own
// namespaced queries and private pattern types over the wire. Sessions are
// resilient (see README "Resilience"): -heartbeat bounds dead-peer detection,
// -resume-window keeps a disconnected session's replay state for
// reconnect-with-resume, -replay-buffer sizes the per-subscription replay
// ring, and a -connect client with -reconnect rides transport failures with
// backoff, replay, and explicit gap markers. SIGINT/SIGTERM drain gracefully
// within -drain-timeout: listeners close, in-flight windows flush through the
// WAL and final checkpoint, sessions wind down, and the final report breaks
// serving, resilience counters, and ε spend down per tenant.
package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"text/tabwriter"
	"time"

	"patterndp/internal/durable"
	"patterndp/internal/event"
	"patterndp/internal/metrics"
	"patterndp/internal/runtime"
	"patterndp/internal/server"
	"patterndp/internal/synth"
)

// handoffOpts are the rolling-restart knobs: To makes the first signal hand
// the partition off to a takeover peer instead of plain-draining; Takeover
// makes startup adopt one inbound handoff before serving; Token is the
// shared secret between the two.
type handoffOpts struct {
	To       string
	Takeover string
	Token    string
}

// startAdmin serves the admin HTTP endpoint on addr; the returned func closes
// its listener.
func startAdmin(addr string, adm *server.Admin) (func(), error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin listen: %w", err)
	}
	fmt.Printf("admin endpoint on http://%s (/metrics /healthz /readyz /statsz /debug/pprof)\n", l.Addr())
	go http.Serve(l, adm)
	return func() { l.Close() }, nil
}

// handoffPhase returns the timer histogram for one rolling-restart phase.
// With a nil registry it returns a detached (unregistered) histogram, so the
// timing call sites need no gates.
func handoffPhase(reg *metrics.Registry, phase string) *metrics.Histogram {
	return reg.Histogram("ppm_handoff_phase_seconds",
		"Rolling-restart handoff phase durations: freeze (drain and pane-boundary quiesce), spill (session export), ship (directory transfer to the peer), receive (inbound transfer and verify).",
		metrics.L("phase", phase))
}

// runServer is the -listen mode: one shared runtime, many tenant
// connections, graceful drain on the first signal.
func runServer(addr string, maxStreams int, drainTimeout, heartbeat, resumeWindow time.Duration, replayBuffer int, rateLimit float64, maxParked int, ho handoffOpts, adminAddr string, traceSample float64, shards int, eps float64, seed int64, buffer int, bp string, lateness, horizon, slide int64, naive bool, windows int, budget float64, budgetPol, walDir, fsync string, ckptEvery time.Duration) error {
	// The -listen mode is always observed: one registry spans runtime,
	// durability, serving layer, and handoff phases whether or not an
	// -admin listener exposes it (the shutdown report reads it regardless).
	reg := metrics.NewRegistry()
	start := time.Now()
	var adopted *server.HandoffSummary
	if ho.Takeover != "" {
		recvStart := time.Now()
		sum, err := acceptHandoff(ho.Takeover, walDir, ho.Token)
		if err != nil {
			return fmt.Errorf("takeover failed (source still authoritative): %w", err)
		}
		handoffPhase(reg, "receive").ObserveSince(recvStart)
		adopted = &sum
		fmt.Printf("takeover: adopted %d files (%d bytes) from %s — %d sessions, source spend %.4g\n",
			sum.Files, sum.Bytes, sum.Source, sum.Sessions, sum.Spend)
	}
	rt, ds, scfg, err := buildRuntime(shards, eps, seed, buffer, bp, lateness, horizon, slide, naive, windows, budget, budgetPol, walDir, fsync, ckptEvery, reg, traceSample)
	if err != nil {
		return err
	}
	if adopted != nil {
		// The one-sided invariant, asserted across the process boundary: the
		// spend this process recovered must cover everything the source had
		// charged (and possibly published) at freeze.
		var recovered float64
		if rec := rt.Recovery(); rec != nil {
			recovered = float64(rec.RestoredSpend) + float64(rec.ReplayedSpend)
		}
		if recovered+1e-9 < adopted.Spend {
			rt.Close()
			return fmt.Errorf("takeover: recovered spend %.6g < source frozen spend %.6g — refusing to under-count", recovered, adopted.Spend)
		}
		fmt.Printf("takeover invariant: recovered spend %.4g >= source frozen spend %.4g\n", recovered, adopted.Spend)
	}
	srv, err := server.New(server.Config{
		Runtime:           rt,
		Auth:              server.TokenAuth(maxStreams),
		Heartbeat:         heartbeat,
		ResumeWindow:      resumeWindow,
		ReplayBuffer:      replayBuffer,
		RateLimit:         rateLimit,
		MaxParkedSessions: maxParked,
		Metrics:           reg,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "server: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	if adminAddr != "" {
		closeAdmin, err := startAdmin(adminAddr, server.NewAdmin(server.AdminConfig{Registry: reg, Runtime: rt, Server: srv}))
		if err != nil {
			rt.Close()
			return err
		}
		defer closeAdmin()
	}
	if walDir != "" {
		// Adopt any spilled sessions (from a handoff or a plain drain with the
		// same directory) so clients can Resume against this process.
		if sp, err := durable.ReadSessions(walDir); err != nil {
			fmt.Fprintf(os.Stderr, "session spill unreadable, clients will re-handshake: %v\n", err)
		} else if sp != nil {
			n, _ := srv.ImportSessions(sp)
			if err := durable.RemoveSessions(walDir); err != nil {
				fmt.Fprintf(os.Stderr, "session spill cleanup: %v\n", err)
			}
			fmt.Printf("adopted %d resumable sessions from spill\n", n)
		}
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	shared := make([]string, 0, len(ds.TargetQueries()))
	for _, q := range ds.TargetQueries() {
		shared = append(shared, q.Name)
	}
	fmt.Printf("listening on %s: %d shards, window width %d, shared queries %v\n",
		l.Addr(), shards, scfg.WindowWidth, shared)
	fmt.Printf("resilience: heartbeat %v (reap at 2x), resume window %v, replay ring %d answers/subscription\n",
		heartbeat, resumeWindow, replayBuffer)
	if budget > 0 {
		fmt.Printf("per-stream budget grant %g per epoch (policy %s), tenant stream quota %s\n",
			budget, budgetPol, quotaString(maxStreams))
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		if err != nil && !errors.Is(err, server.ErrServerClosed) {
			rt.Close()
			return err
		}
	}

	if ho.To != "" {
		return handoffDrain(srv, rt, reg, start, walDir, addr, ho, drainTimeout, budget > 0)
	}
	fmt.Printf("\ndraining (timeout %v) — new ingest refused, sessions told goodbye\n", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if walDir != "" {
		// Park session cores instead of retiring them so they can be spilled
		// beside the WAL below: a restart with the same -wal-dir adopts them
		// and clients Resume instead of starting over.
		srv.DrainForHandoff()
	} else {
		srv.Drain()
	}
	// CloseContext flushes in-flight windows through the WAL and cuts the
	// final checkpoint; closing the answer bus also ends every session's
	// delivery bridges.
	closeErr := rt.CloseContext(drainCtx)
	waitErr := srv.Wait(drainCtx)
	if waitErr != nil {
		fmt.Fprintf(os.Stderr, "drain timeout: remaining sessions force-closed\n")
	}
	if walDir != "" && closeErr == nil && waitErr == nil {
		if sp := srv.ExportSessions(); len(sp.Sessions) > 0 {
			if err := durable.WriteSessions(walDir, sp); err != nil {
				fmt.Fprintf(os.Stderr, "session spill: %v\n", err)
			} else {
				fmt.Printf("spilled %d resumable sessions beside the WAL\n", len(sp.Sessions))
			}
		}
	}

	// The shutdown report prints from the same CollectStatsz document the
	// /statsz endpoint serves, so the two views can never disagree.
	printServeReport(server.CollectStatsz(reg, rt, srv, time.Since(start)), budget > 0)
	if walDir != "" && closeErr == nil {
		fmt.Printf("\ndurable state checkpointed to %s — restart with the same -wal-dir to resume\n", walDir)
	}
	return closeErr
}

// handoffDrain is the rolling-restart exit path: quiesce at a pane boundary,
// spill the parked sessions beside the WAL, ship the whole frozen directory
// to the takeover peer, and exit 0 once the peer has verified and acked it.
// Any failure leaves the local directory authoritative — the operator
// restarts this side instead.
func handoffDrain(srv *server.Server, rt *runtime.Runtime, reg *metrics.Registry, start time.Time, walDir, addr string, ho handoffOpts, drainTimeout time.Duration, withBudget bool) error {
	fmt.Printf("\nhandoff drain (timeout %v) — freezing at a pane boundary, shipping partition to %s\n", drainTimeout, ho.To)
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	freezeStart := time.Now()
	srv.DrainForHandoff()
	if err := srv.Wait(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "handoff drain timeout: remaining sessions force-closed\n")
	}
	if err := rt.Freeze(ctx); err != nil {
		return fmt.Errorf("handoff freeze: %w (durable state intact in %s)", err, walDir)
	}
	handoffPhase(reg, "freeze").ObserveSince(freezeStart)
	var spend float64
	if b := rt.Snapshot().Budget; b != nil {
		spend = float64(b.Spent)
	}
	spillStart := time.Now()
	sp := srv.ExportSessions()
	if err := durable.WriteSessions(walDir, sp); err != nil {
		return fmt.Errorf("handoff spill: %w", err)
	}
	handoffPhase(reg, "spill").ObserveSince(spillStart)
	shipStart := time.Now()
	conn, err := net.Dial("tcp", ho.To)
	if err != nil {
		return fmt.Errorf("handoff dial: %w (durable state intact in %s)", err, walDir)
	}
	defer conn.Close()
	sum, err := server.SendHandoff(conn, walDir, ho.Token, addr, len(sp.Sessions), spend, server.HandoffCrashNone)
	if err != nil {
		return fmt.Errorf("handoff: %w (durable state intact in %s)", err, walDir)
	}
	handoffPhase(reg, "ship").ObserveSince(shipStart)
	fmt.Printf("handoff complete: %d files (%d bytes), %d sessions, frozen spend %.4g — peer acked\n",
		sum.Files, sum.Bytes, sum.Sessions, sum.Spend)
	printServeReport(server.CollectStatsz(reg, rt, srv, time.Since(start)), withBudget)
	return nil
}

// acceptHandoff accepts exactly one inbound handoff on addr and stages it
// into walDir.
func acceptHandoff(addr, walDir, token string) (server.HandoffSummary, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return server.HandoffSummary{}, err
	}
	fmt.Printf("takeover: awaiting partition handoff on %s\n", l.Addr())
	conn, err := l.Accept()
	l.Close()
	if err != nil {
		return server.HandoffSummary{}, err
	}
	defer conn.Close()
	return server.ReceiveHandoff(conn, walDir, token)
}

func quotaString(n int) string {
	if n <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d streams", n)
}

// printServeReport is the final breakdown printed at shutdown: serving and
// resilience counters per tenant, latency summaries, and, under a budget,
// each tenant's live ε position. It prints from a CollectStatsz document —
// the exact payload the /statsz endpoint serves — so the report and a final
// scrape can never disagree.
func printServeReport(z server.Statsz, withBudget bool) {
	st := *z.Server
	fmt.Printf("\nserved %d connections (%d auth failures); sessions: %d parked, %d expired unresumed\n",
		st.ConnsTotal, st.AuthFailures, st.SessionsParked, st.SessionsExpired)
	if tot := z.Runtime.Totals(); tot.EventsIn > 0 {
		fmt.Printf("ingested %d events — %.0f events/s over %s\n",
			tot.EventsIn, z.EventsPerSec, z.Runtime.Uptime.Round(time.Millisecond))
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if withBudget {
		fmt.Fprintln(tw, "tenant\tstreams\tevents\tanswers\tdropped\tresumes\treplayed\tgaps\twr-timeouts\tspent eps\tmax stream\texhausted")
	} else {
		fmt.Fprintln(tw, "tenant\tstreams\tevents\tanswers\tdropped\tresumes\treplayed\tgaps\twr-timeouts")
	}
	for _, ts := range st.Tenants {
		if withBudget {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.4g\t%.4g\t%d/%d\n",
				ts.Tenant, ts.Streams, ts.EventsIn, ts.AnswersSent, ts.AnswersDropped,
				ts.Resumes, ts.AnswersReplayed, ts.GapsSent, ts.WriteTimeouts,
				float64(ts.Spend.Spent), float64(ts.Spend.MaxStreamSpent),
				ts.Spend.Exhausted, ts.Spend.Streams)
		} else {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				ts.Tenant, ts.Streams, ts.EventsIn, ts.AnswersSent, ts.AnswersDropped,
				ts.Resumes, ts.AnswersReplayed, ts.GapsSent, ts.WriteTimeouts)
		}
	}
	tw.Flush()
	if len(z.Latencies) > 0 {
		fmt.Println("\nlatencies (ms):")
		ltw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(ltw, "metric\tcount\tmean\tp50\tp99\tmax")
		for _, l := range z.Latencies {
			fmt.Fprintf(ltw, "%s\t%d\t%.3f\t%.3f\t%.3f\t%.3f\n", l.Metric, l.Count, l.MeanMs, l.P50Ms, l.P99Ms, l.MaxMs)
		}
		ltw.Flush()
	}
}

// runClient is the -connect mode: replay the synthetic feed to a server as
// one tenant, subscribed to every query visible to it, and report what came
// back — including the budget position the answers carried.
func runClient(addr, tenant string, streams, windows, batch int, seed int64, reconnect bool) error {
	if batch < 1 {
		return fmt.Errorf("batch size %d must be >= 1", batch)
	}
	scfg := synth.DefaultConfig(seed)
	scfg.NumWindows = windows
	ds, err := synth.Generate(scfg)
	if err != nil {
		return err
	}
	base := ds.Events()

	c, err := server.Connect(server.ClientConfig{
		Token:     tenant,
		Dialer:    func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Reconnect: reconnect,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	w := c.Welcome()
	fmt.Printf("connected to %s as %q: %d shards, grant %g, shared queries %v\n",
		addr, w.Tenant, w.Shards, w.Grant, w.Queries)
	if reconnect {
		fmt.Printf("reconnect enabled: session %s resumes with replay on transport failure\n", c.Session())
	}

	sub, err := c.Subscribe("", 1024)
	if err != nil {
		return err
	}
	// The consumer tallies per-query detections and tracks the budget
	// position answers carry per stream.
	type tally struct{ answers, detected, suppressed int }
	tallies := make(map[string]*tally)
	lastSpend := make(map[string]float64)
	var gaps, gapped int
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for a := range sub.C {
			if a.Gap {
				// An explicit gap marker: answers [GapFrom, Seq] were lost
				// to replay-ring overflow or an expired resume (Seq 0 =
				// extent unknown).
				gaps++
				if a.Seq >= a.GapFrom {
					gapped += int(a.Seq - a.GapFrom + 1)
				}
				continue
			}
			tl := tallies[a.Query]
			if tl == nil {
				tl = &tally{}
				tallies[a.Query] = tl
			}
			tl.answers++
			if a.Suppressed {
				tl.suppressed++
			} else if a.Detected {
				tl.detected++
			}
			if a.SpentEpsilon > 0 {
				lastSpend[a.Stream] = a.SpentEpsilon
			}
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	sent := 0
	buf := make([]event.Event, 0, batch)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		for {
			_, err := c.Ingest(buf)
			if err == nil {
				break
			}
			// Under -reconnect a request that failed in flight is retried
			// once the session resumes; re-sent window events are idempotent
			// (late duplicates are dropped by the runtime).
			if !reconnect || c.Err() != nil || ctx.Err() != nil {
				return err
			}
			time.Sleep(50 * time.Millisecond)
		}
		sent += len(buf)
		buf = buf[:0]
		return nil
	}
feed:
	for i := 0; i < streams; i++ {
		key := fmt.Sprintf("stream-%03d", i)
		for _, e := range base {
			if ctx.Err() != nil {
				break feed
			}
			buf = append(buf, e.WithSource(key))
			if len(buf) == batch {
				if err := flush(); err != nil {
					return fmt.Errorf("after %d events: %w", sent, err)
				}
			}
		}
		if err := flush(); err != nil {
			return fmt.Errorf("after %d events: %w", sent, err)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("ingested %d events in %v — %.0f events/s\n",
		sent, elapsed.Round(time.Millisecond), metrics.Rate(int64(sent), elapsed))

	// Trailing windows stay open server-side until its drain; give in-flight
	// answers a moment, then detach.
	select {
	case <-time.After(time.Second):
	case <-ctx.Done():
	case g := <-c.Goodbye:
		fmt.Printf("server says goodbye: %s\n", g.Reason)
	}
	c.Unsubscribe(sub)
	consumer.Wait()

	fmt.Println("\nper-query answers:")
	for q, tl := range tallies {
		rate := 0.0
		if tl.answers > 0 {
			rate = float64(tl.detected) / float64(tl.answers)
		}
		if tl.suppressed > 0 {
			fmt.Printf("  %-12s %6d answers, %5.1f%% detected, %d suppressed\n", q, tl.answers, 100*rate, tl.suppressed)
		} else {
			fmt.Printf("  %-12s %6d answers, %5.1f%% detected\n", q, tl.answers, 100*rate)
		}
	}
	if len(lastSpend) > 0 {
		var max float64
		for _, sp := range lastSpend {
			if sp > max {
				max = sp
			}
		}
		fmt.Printf("budget: answers carried spend for %d streams, max stream spend %.4g eps\n", len(lastSpend), max)
	}
	if n := c.Reconnects(); n > 0 || gaps > 0 {
		extent := fmt.Sprintf("%d answers declared lost", gapped)
		fmt.Printf("resilience: %d reconnects, %d duplicate answers suppressed, %d gap markers (%s)\n",
			n, c.DupsDropped(), gaps, extent)
	}
	return nil
}
