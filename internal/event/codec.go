package event

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Wire formats for events: a JSON codec for tooling, an append-friendly
// line codec (one event per line) for quick traces, and a compact binary
// codec for the network serving layer (internal/wire frames carry batches
// of binary events). JSON and binary both round-trip all event fields
// including typed attributes; the line codec carries the type/time/source
// triple only.

// jsonEvent is the serialized form.
type jsonEvent struct {
	Type   string               `json:"type"`
	Time   int64                `json:"time"`
	Wall   *time.Time           `json:"wall,omitempty"`
	Source string               `json:"source,omitempty"`
	Attrs  map[string]jsonValue `json:"attrs,omitempty"`
}

type jsonValue struct {
	Kind string `json:"kind"`
	// Exactly one of the payload fields is set, per Kind.
	Int    *int64   `json:"int,omitempty"`
	Float  *float64 `json:"float,omitempty"`
	String *string  `json:"string,omitempty"`
	Bool   *bool    `json:"bool,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (e Event) MarshalJSON() ([]byte, error) {
	je := jsonEvent{Type: string(e.Type), Time: int64(e.Time), Source: e.Source}
	if !e.Wall.IsZero() {
		w := e.Wall
		je.Wall = &w
	}
	if len(e.Attrs) > 0 {
		je.Attrs = make(map[string]jsonValue, len(e.Attrs))
		for k, v := range e.Attrs {
			jv, err := toJSONValue(v)
			if err != nil {
				return nil, fmt.Errorf("event: attribute %q: %w", k, err)
			}
			je.Attrs[k] = jv
		}
	}
	return json.Marshal(je)
}

// UnmarshalJSON implements json.Unmarshaler.
func (e *Event) UnmarshalJSON(data []byte) error {
	var je jsonEvent
	if err := json.Unmarshal(data, &je); err != nil {
		return err
	}
	if je.Type == "" {
		return fmt.Errorf("event: missing type")
	}
	out := Event{Type: Type(je.Type), Time: Timestamp(je.Time), Source: je.Source}
	if je.Wall != nil {
		out.Wall = *je.Wall
	}
	if len(je.Attrs) > 0 {
		out.Attrs = make(map[string]Value, len(je.Attrs))
		for k, jv := range je.Attrs {
			v, err := fromJSONValue(jv)
			if err != nil {
				return fmt.Errorf("event: attribute %q: %w", k, err)
			}
			out.Attrs[k] = v
		}
	}
	*e = out
	return nil
}

func toJSONValue(v Value) (jsonValue, error) {
	switch v.Kind() {
	case KindInt:
		i, _ := v.AsInt()
		return jsonValue{Kind: "int", Int: &i}, nil
	case KindFloat:
		f, _ := v.AsFloat()
		return jsonValue{Kind: "float", Float: &f}, nil
	case KindString:
		s, _ := v.AsString()
		return jsonValue{Kind: "string", String: &s}, nil
	case KindBool:
		b, _ := v.AsBool()
		return jsonValue{Kind: "bool", Bool: &b}, nil
	default:
		return jsonValue{}, fmt.Errorf("invalid value kind")
	}
}

func fromJSONValue(jv jsonValue) (Value, error) {
	switch jv.Kind {
	case "int":
		if jv.Int == nil {
			return Value{}, fmt.Errorf("int value missing payload")
		}
		return Int(*jv.Int), nil
	case "float":
		if jv.Float == nil {
			return Value{}, fmt.Errorf("float value missing payload")
		}
		return Float(*jv.Float), nil
	case "string":
		if jv.String == nil {
			return Value{}, fmt.Errorf("string value missing payload")
		}
		return String(*jv.String), nil
	case "bool":
		if jv.Bool == nil {
			return Value{}, fmt.Errorf("bool value missing payload")
		}
		return Bool(*jv.Bool), nil
	default:
		return Value{}, fmt.Errorf("unknown value kind %q", jv.Kind)
	}
}

// WriteJSONLines writes events as newline-delimited JSON.
func WriteJSONLines(w io.Writer, evs []Event) error {
	enc := json.NewEncoder(w)
	for i := range evs {
		if err := enc.Encode(evs[i]); err != nil {
			return fmt.Errorf("event: encoding event %d: %w", i, err)
		}
	}
	return nil
}

// ReadJSONLines reads newline-delimited JSON events until EOF.
func ReadJSONLines(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("event: decoding event %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}

// Binary codec. One event encodes as:
//
//	flags   u8       (presence of source / wall / attrs)
//	type    string   (uvarint length + bytes)
//	time    varint
//	source  string             — only when flagSource
//	wall    varint unix-nanos  — only when flagWall
//	nattrs  uvarint            — only when flagAttrs
//	  key   string, kind u8, payload (int: varint, float: u64 LE bits,
//	                                  string: string, bool: u8)
//
// Attributes encode sorted by key, so equal events produce identical bytes.
// The codec is self-delimiting: DecodeBinary reports how many bytes one
// event consumed, so batches are plain concatenations.
const (
	flagSource = 1 << iota
	flagWall
	flagAttrs
)

// maxBinaryStringLen bounds every length prefix DecodeBinary will accept, so
// a corrupt or hostile length byte cannot force a huge allocation.
const maxBinaryStringLen = 1 << 20

// AppendBinary appends e's compact binary encoding to dst and returns the
// extended slice.
func AppendBinary(dst []byte, e Event) []byte {
	var flags byte
	if e.Source != "" {
		flags |= flagSource
	}
	if !e.Wall.IsZero() {
		flags |= flagWall
	}
	if len(e.Attrs) > 0 {
		flags |= flagAttrs
	}
	dst = append(dst, flags)
	dst = appendBinaryString(dst, string(e.Type))
	dst = binary.AppendVarint(dst, int64(e.Time))
	if flags&flagSource != 0 {
		dst = appendBinaryString(dst, e.Source)
	}
	if flags&flagWall != 0 {
		dst = binary.AppendVarint(dst, e.Wall.UnixNano())
	}
	if flags&flagAttrs != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(e.Attrs)))
		keys := make([]string, 0, len(e.Attrs))
		for k := range e.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			dst = appendBinaryString(dst, k)
			v := e.Attrs[k]
			dst = append(dst, byte(v.Kind()))
			switch v.Kind() {
			case KindInt:
				i, _ := v.AsInt()
				dst = binary.AppendVarint(dst, i)
			case KindFloat:
				f, _ := v.AsFloat()
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
			case KindString:
				s, _ := v.AsString()
				dst = appendBinaryString(dst, s)
			case KindBool:
				b, _ := v.AsBool()
				var bb byte
				if b {
					bb = 1
				}
				dst = append(dst, bb)
			}
		}
	}
	return dst
}

// DecodeBinary decodes one binary event from the front of b, returning the
// event and the number of bytes consumed. Damaged input surfaces as an
// error, never a panic or an oversized allocation.
func DecodeBinary(b []byte) (Event, int, error) {
	var e Event
	if len(b) == 0 {
		return e, 0, fmt.Errorf("event: empty binary input")
	}
	flags := b[0]
	if flags&^(flagSource|flagWall|flagAttrs) != 0 {
		return e, 0, fmt.Errorf("event: unknown binary flags %#x", flags)
	}
	off := 1
	typ, n, err := decodeBinaryString(b[off:])
	if err != nil {
		return e, 0, fmt.Errorf("event: type: %w", err)
	}
	if typ == "" {
		return e, 0, fmt.Errorf("event: empty type")
	}
	off += n
	e.Type = Type(typ)
	ts, n := binary.Varint(b[off:])
	if n <= 0 {
		return e, 0, fmt.Errorf("event: bad timestamp varint")
	}
	off += n
	e.Time = Timestamp(ts)
	if flags&flagSource != 0 {
		src, n, err := decodeBinaryString(b[off:])
		if err != nil {
			return e, 0, fmt.Errorf("event: source: %w", err)
		}
		off += n
		e.Source = src
	}
	if flags&flagWall != 0 {
		ns, n := binary.Varint(b[off:])
		if n <= 0 {
			return e, 0, fmt.Errorf("event: bad wall varint")
		}
		off += n
		e.Wall = time.Unix(0, ns)
	}
	if flags&flagAttrs != 0 {
		cnt, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return e, 0, fmt.Errorf("event: bad attr count")
		}
		off += n
		if cnt == 0 || cnt > maxBinaryStringLen {
			return e, 0, fmt.Errorf("event: attr count %d out of range", cnt)
		}
		e.Attrs = make(map[string]Value, cnt)
		for i := uint64(0); i < cnt; i++ {
			key, n, err := decodeBinaryString(b[off:])
			if err != nil {
				return e, 0, fmt.Errorf("event: attr key: %w", err)
			}
			off += n
			if off >= len(b) {
				return e, 0, fmt.Errorf("event: attr %q: missing kind", key)
			}
			kind := ValueKind(b[off])
			off++
			var v Value
			switch kind {
			case KindInt:
				iv, n := binary.Varint(b[off:])
				if n <= 0 {
					return e, 0, fmt.Errorf("event: attr %q: bad int", key)
				}
				off += n
				v = Int(iv)
			case KindFloat:
				if len(b)-off < 8 {
					return e, 0, fmt.Errorf("event: attr %q: short float", key)
				}
				v = Float(math.Float64frombits(binary.LittleEndian.Uint64(b[off:])))
				off += 8
			case KindString:
				s, n, err := decodeBinaryString(b[off:])
				if err != nil {
					return e, 0, fmt.Errorf("event: attr %q: %w", key, err)
				}
				off += n
				v = String(s)
			case KindBool:
				if off >= len(b) || b[off] > 1 {
					return e, 0, fmt.Errorf("event: attr %q: bad bool", key)
				}
				v = Bool(b[off] == 1)
				off++
			default:
				return e, 0, fmt.Errorf("event: attr %q: unknown kind %d", key, kind)
			}
			if _, dup := e.Attrs[key]; dup {
				return e, 0, fmt.Errorf("event: duplicate attr %q", key)
			}
			e.Attrs[key] = v
		}
	}
	return e, off, nil
}

// AppendBinaryBatch appends a uvarint event count followed by each event's
// binary encoding — the ingest-frame payload of the wire protocol.
func AppendBinaryBatch(dst []byte, evs []Event) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(evs)))
	for i := range evs {
		dst = AppendBinary(dst, evs[i])
	}
	return dst
}

// DecodeBinaryBatch decodes an AppendBinaryBatch payload, appending into
// dst (which may be a reused scratch slice) and returning the extended
// slice. The whole input must be consumed: trailing bytes are an error.
func DecodeBinaryBatch(dst []Event, b []byte) ([]Event, error) {
	cnt, n := binary.Uvarint(b)
	if n <= 0 {
		return dst, fmt.Errorf("event: bad batch count")
	}
	b = b[n:]
	// Each event costs at least 3 bytes (flags, 1-byte type, time), so a
	// hostile count larger than the payload could carry is rejected before
	// any allocation grows with it.
	if cnt > uint64(len(b)/3)+1 {
		return dst, fmt.Errorf("event: batch count %d exceeds payload", cnt)
	}
	for i := uint64(0); i < cnt; i++ {
		e, n, err := DecodeBinary(b)
		if err != nil {
			return dst, fmt.Errorf("event: batch event %d: %w", i, err)
		}
		b = b[n:]
		dst = append(dst, e)
	}
	if len(b) != 0 {
		return dst, fmt.Errorf("event: %d trailing bytes after batch", len(b))
	}
	return dst, nil
}

func appendBinaryString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decodeBinaryString(b []byte) (string, int, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 {
		return "", 0, fmt.Errorf("bad string length")
	}
	if l > maxBinaryStringLen || l > uint64(len(b)-n) {
		return "", 0, fmt.Errorf("string length %d exceeds input", l)
	}
	return string(b[n : n+int(l)]), n + int(l), nil
}

// MarshalLine renders the event in a compact single-line text form:
//
//	type<TAB>time<TAB>source
//
// Attributes and wall time are not included — the line codec is for quick
// traces where the triple is enough. Use JSON for full fidelity.
func (e Event) MarshalLine() string {
	return fmt.Sprintf("%s\t%d\t%s", e.Type, e.Time, e.Source)
}

// ParseLine parses the MarshalLine form.
func ParseLine(line string) (Event, error) {
	parts := strings.Split(line, "\t")
	if len(parts) != 3 {
		return Event{}, fmt.Errorf("event: line has %d fields, want 3", len(parts))
	}
	if parts[0] == "" {
		return Event{}, fmt.Errorf("event: empty type")
	}
	ts, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("event: bad timestamp %q: %w", parts[1], err)
	}
	return Event{Type: Type(parts[0]), Time: Timestamp(ts), Source: parts[2]}, nil
}
