package event

import (
	"fmt"
	"strings"
)

// Pattern is a detected pattern instance: a temporally ordered sequence of
// events, P = seq(e1, e2, …, em) (Section III-A). Higher-level patterns are
// flattened into their constituent events, so any pattern is representable
// this way.
type Pattern struct {
	// Name labels the pattern type that produced this instance (the query).
	Name string
	// Events are the constituent events in temporal order.
	Events []Event
}

// NewPattern builds a pattern instance, sorting events into stream order.
func NewPattern(name string, evs ...Event) Pattern {
	cp := make([]Event, len(evs))
	copy(cp, evs)
	SortEvents(cp)
	return Pattern{Name: name, Events: cp}
}

// Len returns the number of constituent events (m in the paper).
func (p Pattern) Len() int { return len(p.Events) }

// Start returns the logical timestamp of the first constituent event.
// It returns 0 for an empty pattern.
func (p Pattern) Start() Timestamp {
	if len(p.Events) == 0 {
		return 0
	}
	return p.Events[0].Time
}

// End returns the logical timestamp of the last constituent event.
// It returns 0 for an empty pattern.
func (p Pattern) End() Timestamp {
	if len(p.Events) == 0 {
		return 0
	}
	return p.Events[len(p.Events)-1].Time
}

// Types returns the event types of the pattern elements in order.
func (p Pattern) Types() []Type { return TypesOf(p.Events) }

// Contains reports whether the pattern has an element equal to e.
func (p Pattern) Contains(e Event) bool {
	for _, pe := range p.Events {
		if pe.Equal(e) {
			return true
		}
	}
	return false
}

// Equal reports whether two pattern instances have the same name and the
// same element events.
func (p Pattern) Equal(o Pattern) bool {
	if p.Name != o.Name || len(p.Events) != len(o.Events) {
		return false
	}
	for i := range p.Events {
		if !p.Events[i].Equal(o.Events[i]) {
			return false
		}
	}
	return true
}

// Overlaps reports whether two pattern instances share at least one element
// event — the paper's definition of overlapping patterns.
func (p Pattern) Overlaps(o Pattern) bool {
	for _, e := range p.Events {
		if o.Contains(e) {
			return true
		}
	}
	return false
}

// InPatternNeighbor reports whether p and o are in-pattern neighbors
// (Definition 1): same length, and they differ in exactly one element.
func (p Pattern) InPatternNeighbor(o Pattern) bool {
	if len(p.Events) != len(o.Events) || len(p.Events) == 0 {
		return false
	}
	diff := 0
	for i := range p.Events {
		if !p.Events[i].Equal(o.Events[i]) {
			diff++
		}
	}
	return diff == 1
}

// String renders the pattern as name(seq e1, e2, …).
func (p Pattern) String() string {
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return fmt.Sprintf("%s(seq %s)", p.Name, strings.Join(parts, ", "))
}
