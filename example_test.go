package patterndp_test

import (
	"fmt"

	"patterndp"
)

// ExampleNewUniformPPM shows the budget split of Fig. 3: ε spread evenly
// over the elements of the private pattern.
func ExampleNewUniformPPM() {
	private, _ := patterndp.NewPatternType("trip", "enter", "near-hospital")
	ppm, _ := patterndp.NewUniformPPM(2.0, private)
	for _, el := range private.Elements {
		fmt.Printf("%s: flip probability %.4f\n", el, ppm.FlipProb(el))
	}
	fmt.Printf("public events: flip probability %.4f\n", ppm.FlipProb("other"))
	// Output:
	// enter: flip probability 0.2689
	// near-hospital: flip probability 0.2689
	// public events: flip probability 0.0000
}

// ExampleParse shows the textual query language.
func ExampleParse() {
	expr, window, err := patterndp.Parse("SEQ(enter-taxi, near-hospital) WITHIN 10")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(expr, "window:", window)
	// Output:
	// SEQ(enter-taxi, near-hospital) window: 10
}

// ExampleNewPrivateEngine walks the setup and service phases of Fig. 2 with
// a huge budget so the released answers are deterministic.
func ExampleNewPrivateEngine() {
	private, _ := patterndp.NewPatternType("trip", "enter-taxi", "near-hospital")
	ppm, _ := patterndp.NewUniformPPM(1000, private) // demo: negligible noise
	engine, _ := patterndp.NewPrivateEngine(ppm, []patterndp.PatternType{private}, 1)
	engine.RegisterTarget(patterndp.Query{
		Name:    "jam",
		Pattern: patterndp.SeqTypes("near-hospital", "slow"),
		Window:  10,
	})
	answers, _ := engine.ProcessEvents([]patterndp.Event{
		patterndp.NewEvent("near-hospital", 1),
		patterndp.NewEvent("slow", 3),
		patterndp.NewEvent("slow", 14),
	}, 10)
	for _, a := range answers {
		fmt.Printf("window %d: %s detected=%t\n", a.WindowIndex, a.Query, a.Detected)
	}
	// Output:
	// window 0: jam detected=true
	// window 1: jam detected=false
}

// ExampleWindowSlice shows the tumbling-window batching of an event slice.
func ExampleWindowSlice() {
	events := []patterndp.Event{
		patterndp.NewEvent("a", 0),
		patterndp.NewEvent("b", 7),
		patterndp.NewEvent("a", 13),
	}
	for i, w := range patterndp.WindowSlice(events, 10) {
		fmt.Printf("window %d [%d,%d): %d events\n", i, w.Start, w.End, len(w.Events))
	}
	// Output:
	// window 0 [0,10): 2 events
	// window 1 [10,20): 1 events
}
