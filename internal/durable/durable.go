// Package durable is the streaming runtime's durability subsystem: a
// write-ahead log of privacy-ledger charges, budget-epoch rotations, and
// control-plane registration changes, plus periodic checkpoints of windower
// and ledger state, so privacy spend survives process restarts.
//
// Durability here is a *privacy* requirement, not an ops nicety: if the
// process crashes and restarts with a fresh account.Ledger, previously
// released answers silently compose past the declared ε. The WAL makes the
// ledger's charges outlive the process, and the one-sided recovery invariant
// is the contract every crash point is tested against:
//
//	recovered spend ≥ spend of every answer actually published.
//
// The runtime appends a window record *before* it publishes the window's
// answers, so a crash between charge and publish may leave a charge on disk
// whose answer never reached a subscriber — an over-count, which is
// privacy-safe — but never a published answer whose charge is lost.
//
// # Write-ahead log
//
// Each serving shard owns one single-writer Appender (mirroring the
// single-writer ShardLedger discipline), and the control plane owns one more
// for rotations and registration changes. Appenders write segment files of
// length-prefixed, CRC-checked binary records — the framing idiom of
// internal/event's codecs applied to a binary record stream — and rotate to a
// new segment past a size bound. Records are staged into a reusable buffer
// and committed with one write(2) per emit batch, so the hot path stays
// allocation-free; the write bypasses user-space buffering, which makes every
// committed record survive a *process* crash. Whether it also survives an OS
// or power crash is the fsync policy:
//
//	FsyncAlways   fsync before the commit returns — full durability, and the
//	              publish path inherits the disk's sync latency.
//	FsyncInterval fsync on a background interval (default 100ms) — process
//	              crashes lose nothing; an OS crash loses at most the last
//	              interval of records.
//	FsyncOff      fsync only at checkpoints and on Close — process crashes
//	              still lose nothing; an OS crash may lose the tail since
//	              the last checkpoint.
//
// # Checkpoints and recovery
//
// A checkpoint snapshots everything the WAL alone cannot rebuild — windower
// state (pane tally rings, watermarks, reorder buffers), per-stream window
// indices, and the full ledger state — together with each appender's log
// sequence number (LSN) at the moment its shard exported. Checkpoint files
// are written to a temp name, fsynced, and renamed, so a crash mid-checkpoint
// leaves the previous checkpoint intact; a torn or corrupted checkpoint is
// detected by CRC and skipped in favor of the previous one. After a
// successful checkpoint, WAL segments wholly covered by it are pruned.
//
// Recovery (Open) loads the newest valid checkpoint and returns the WAL tail
// — every record past the checkpoint's per-shard LSNs — for the runtime to
// replay: charges re-applied to the restored ledger, window positions
// advanced past already-published windows, evictions and rotations re-run.
// Torn or corrupted tail records are detected by CRC and cleanly ignored
// (they are exactly the writes a crash cut short; nothing after them was
// published, because publishing waits for the commit).
package durable

import (
	"errors"
	"fmt"
	"time"

	"patterndp/internal/metrics"
)

// FsyncPolicy selects when WAL writes are forced to stable storage. See the
// package documentation for the crash-safety each policy buys.
type FsyncPolicy int

const (
	// FsyncInterval syncs on a background interval (Options.FsyncInterval).
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs before every commit returns.
	FsyncAlways
	// FsyncOff syncs only at checkpoints and on Close.
	FsyncOff
)

// String names the policy for logs and flags.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncInterval:
		return "interval"
	case FsyncAlways:
		return "always"
	case FsyncOff:
		return "off"
	default:
		return "unknown"
	}
}

// Valid reports whether p is a known policy.
func (p FsyncPolicy) Valid() bool { return p >= FsyncInterval && p <= FsyncOff }

// ParseFsyncPolicy parses a policy name as printed by String.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	for p := FsyncInterval; p <= FsyncOff; p++ {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q", s)
}

// Options parameterizes a Log. Zero values pick the documented defaults.
type Options struct {
	// Shards is the number of shard appenders (one per serving shard).
	// Required, >= 1.
	Shards int
	// Fsync selects the sync policy. Default: FsyncInterval.
	Fsync FsyncPolicy
	// FsyncInterval is the background sync cadence under FsyncInterval.
	// Default: 100ms.
	FsyncInterval time.Duration
	// SegmentBytes bounds a segment file's size; an appender rotates to a
	// fresh segment once the bound is passed. Default: 64 MiB.
	SegmentBytes int64
	// Metrics, when set, registers WAL and checkpoint instrumentation on
	// the registry: commit, fsync, and checkpoint-write latency histograms
	// plus committed-record counters. Nil leaves the durable layer
	// unmeasured with zero timing overhead on the commit path.
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval == 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

func (o Options) validate() error {
	switch {
	case o.Shards < 1:
		return fmt.Errorf("durable: Shards = %d", o.Shards)
	case !o.Fsync.Valid():
		return fmt.Errorf("durable: unknown FsyncPolicy %d", o.Fsync)
	case o.FsyncInterval < 0:
		return fmt.Errorf("durable: FsyncInterval = %v", o.FsyncInterval)
	case o.SegmentBytes < int64(segmentHeaderSize)+16:
		return fmt.Errorf("durable: SegmentBytes = %d too small", o.SegmentBytes)
	}
	return nil
}

// Kind discriminates WAL record types.
type Kind uint8

const (
	// KindWindow records one decided window release: the stream, its window
	// index, the admission decision, and the charge (the mechanism's
	// per-window pattern-level ε for admitted windows, 0 otherwise).
	// Appended by the owning shard before the window's answers are
	// published.
	KindWindow Kind = 1
	// KindEvict records an idle stream's eviction, so replay archives its
	// spend into the retired total like the live path does.
	KindEvict Kind = 2
	// KindRotation records a budget-epoch rotation (control appender).
	KindRotation Kind = 3
	// KindRegistration records a control-plane registration change (control
	// appender). Registration records are an audit trail — recovery does
	// not re-apply them, since the private/target sets are supplied by the
	// restarting operator's Config.
	KindRegistration Kind = 4
)

// Registration ops for KindRegistration records.
const (
	OpRegisterQuery     uint8 = 0
	OpUnregisterQuery   uint8 = 1
	OpRegisterPrivate   uint8 = 2
	OpUnregisterPrivate uint8 = 3
)

// Decision mirrors the account package's admission decisions in the WAL,
// plus DecisionSkipped for windows that closed while no query was registered
// (they publish and spend nothing but still advance the stream's window
// index and w-event ring).
type Decision uint8

const (
	DecisionAdmitted   Decision = 0
	DecisionDenied     Decision = 1
	DecisionSuppressed Decision = 2
	DecisionThrottled  Decision = 3
	DecisionSkipped    Decision = 4
)

// Record is one decoded WAL record. Kind selects which fields are
// meaningful; Shard and LSN are assigned by the reader from the segment the
// record was found in.
type Record struct {
	// Kind is the record type.
	Kind Kind
	// Shard is the appender the record was written by (ControlShard for the
	// control appender). Set on read.
	Shard int
	// LSN is the record's per-appender log sequence number, starting at 1.
	// Set on read.
	LSN uint64

	// Stream is the stream key (KindWindow, KindEvict).
	Stream string
	// WindowIdx is the stream's window index (KindWindow).
	WindowIdx int64
	// WindowStart is the window's interval start (KindWindow) — what lets
	// replay re-align window indices with stream time for streams that
	// appeared after the last checkpoint.
	WindowStart int64
	// Decision is the admission decision (KindWindow).
	Decision Decision
	// Charge is the admitted release's ε (KindWindow; 0 unless admitted).
	Charge float64
	// BudgetEpoch is the budget epoch the record was written under
	// (KindWindow: the deciding shard's applied epoch; KindRotation: the
	// new epoch).
	BudgetEpoch uint64
	// CtlEpoch is the control-plane epoch (KindRotation, KindRegistration).
	CtlEpoch uint64
	// Op is the registration operation (KindRegistration).
	Op uint8
	// Name is the registered query or private type name (KindRegistration).
	Name string
}

// ControlShard is the shard index the control appender's records carry.
const ControlShard = -1

// ErrCrashed is returned by every Log operation after an injected crash
// point has fired (see InjectCrash). It simulates whole-process death for
// crash-recovery tests: once tripped, nothing further is written — exactly
// like the real crash the recovery invariant is tested against.
var ErrCrashed = errors.New("durable: injected crash")

// ErrClosed is returned by Log operations after Close.
var ErrClosed = errors.New("durable: closed")

// CrashPoint selects where an injected crash fires relative to the write it
// interrupts. Used only by tests.
type CrashPoint int

const (
	// CrashNone disables injection.
	CrashNone CrashPoint = iota
	// CrashBeforeCommit trips before the triggering commit's records are
	// written: the in-memory ledger is already charged, the disk is not —
	// the "after-charge / before-append" kill point. Recovery must not
	// under-count because the answers were never published either.
	CrashBeforeCommit
	// CrashAfterCommit trips after the triggering commit's records are
	// written but before the caller can publish — the "after-append /
	// before-publish" kill point. Recovery over-counts by the unpublished
	// charge, which the invariant allows.
	CrashAfterCommit
	// CrashMidCheckpoint trips while writing a checkpoint, leaving a torn
	// checkpoint file under the final name: recovery must detect it by CRC
	// and fall back to the previous checkpoint plus a longer WAL replay.
	CrashMidCheckpoint
)
