package runtime

import (
	"patterndp/internal/account"
	"patterndp/internal/stream"
)

// emitBudgeted is emit's answer path with privacy-budget admission control
// wired in: every window closed for the stream is decided against the
// stream's ledger before the engine runs, only admitted windows are served
// (and charged, once per window — answering n queries from one release is
// post-processing), and denied or suppressed windows publish nothing or a
// data-independent placeholder. Published answers carry the stream's
// post-charge budget position. Like emit it runs on the shard goroutine,
// reuses per-shard scratch, and takes no locks on the publish path.
func (s *shard) emitBudgeted(key string, st *streamState, ws []stream.Window) bool {
	l := s.rt.ledger
	epoch := uint64(s.cur.budgetEpoch)
	s.admScratch = s.admScratch[:0]
	s.outScratch = s.outScratch[:0]
	rotated := false
	for i := range ws {
		out := l.Decide(s.led, st.bud, int64(st.next+i), s.charge, epoch)
		if out.Decision == account.Rotate {
			// The BudgetRotateEpoch policy: request one rotation per
			// observed epoch (level-triggered, so concurrent exhaustions
			// collapse into one) and suppress the triggering window. The
			// fresh grant applies from the next window boundary, when
			// syncControl picks up the rotated state.
			if !rotated {
				rotated = true
				if _, err := s.rt.rotateBudgetFrom(s.cur.budgetEpoch); err != nil && err != ErrClosed {
					// ErrClosed: a closing runtime grants no fresh
					// epochs — the remaining drain degrades to Suppress.
					return s.fail(err)
				}
			}
			out = l.Suppress(s.led, st.bud)
		}
		if out.Decision == account.Admitted {
			s.admScratch = append(s.admScratch, ws[i])
			s.led.ChargeQueries(s.charge)
		}
		if s.wal != nil {
			charge := 0.0
			if out.Decision == account.Admitted {
				charge = s.charge
			}
			s.wal.StageWindow(key, int64(st.next+i), int64(ws[i].Start), walDecision(out.Decision), charge, epoch)
		}
		s.outScratch = append(s.outScratch, out)
	}
	engAnswers := s.ansScratch[:0]
	if len(s.admScratch) > 0 {
		var err error
		engAnswers, err = s.engine.ProcessWindowsInto(engAnswers, s.admScratch)
		if err != nil {
			return s.fail(err)
		}
		s.ansScratch = engAnswers
	}
	s.pubAns = s.pubAns[:0]
	sliding := s.rt.cfg.sliding()
	nq := len(s.cur.targets)
	ai := 0
	for i := range ws {
		out := s.outScratch[i]
		switch out.Decision {
		case account.Admitted:
			for k := 0; k < nq; k++ {
				a := engAnswers[ai]
				ai++
				a.WindowIndex = st.next + i
				if sliding {
					// Interval-only, as on the unbudgeted path: the pane
					// tallies are windower-owned scratch.
					a.Window.Events = nil
					a.Window.TypeCounts = nil
				}
				s.pubAns = append(s.pubAns, Answer{
					Stream:           key,
					Shard:            s.id,
					Epoch:            s.cur.epoch,
					SpentEpsilon:     out.Spent,
					RemainingEpsilon: out.Remaining,
					TraceNanos:       s.trace0,
					Answer:           a,
				})
			}
		case account.Suppressed, account.Throttled:
			// A data-independent placeholder: computed without touching
			// the window's contents (interval only, Detected constant
			// false), so it spends no budget.
			w := ws[i]
			w.Events = nil
			w.TypeCounts = nil
			for k := 0; k < nq; k++ {
				a := Answer{
					Stream:           key,
					Shard:            s.id,
					Epoch:            s.cur.epoch,
					SpentEpsilon:     out.Spent,
					RemainingEpsilon: out.Remaining,
					Suppressed:       true,
					TraceNanos:       s.trace0,
				}
				a.Query = s.cur.targets[k].Name
				a.WindowIndex = st.next + i
				a.Window = w
				s.pubAns = append(s.pubAns, a)
			}
		case account.Denied:
			// Nothing is released; the window index still advances so
			// indices stay aligned with time.
		}
	}
	// publish defers the answers past the message-level group commit when a
	// WAL is attached: a crash before that commit publishes nothing, a crash
	// after it over-counts (a charge whose answer never left) — both sides
	// of the one-sided recovery invariant.
	s.publish(s.pubAns)
	s.stats.answersEmitted.Add(int64(len(s.pubAns)))
	st.next += len(ws)
	return true
}
