package account

import (
	"sort"
)

// Ledger state export/restore for the durability subsystem. Export runs at
// per-shard quiescent points (the shard goroutine between batches), restore
// and replay run before serving starts, so none of these need the hot path's
// lock-free discipline.
//
// Restore is written to tolerate a shard-count change across the restart:
// stream states are restored into whichever shard the new sharder routes
// their key to, and shard-level aggregates are *merged* (RestoreAggregates),
// so several old shards may fold into one new shard without losing spend.

// EpochSpend is one retired budget epoch's archived spend, the per-epoch
// breakdown of Snapshot.Retired.
type EpochSpend struct {
	// Epoch is the retired budget epoch.
	Epoch uint64 `json:"epoch"`
	// Spent is the stream spend archived out of that epoch (rotations and
	// evictions).
	Spent float64 `json:"spent"`
}

// StreamState is one stream ledger's exported budget position.
type StreamState struct {
	// Epoch is the budget epoch of the stream's current accumulation.
	Epoch uint64 `json:"epoch"`
	// Spent is the live-epoch sequential spend.
	Spent float64 `json:"spent"`
	// MaxComposed is the lifetime maximum w-event composed loss.
	MaxComposed float64 `json:"max_composed"`
	// Ring is the w-event ring of the last overlap windows' charges;
	// RingAt is the next write position.
	Ring   []float64 `json:"ring,omitempty"`
	RingAt int       `json:"ring_at"`
	// Admitted, Denied, Suppressed are the stream's decision counters.
	Admitted   int64 `json:"admitted"`
	Denied     int64 `json:"denied"`
	Suppressed int64 `json:"suppressed"`
}

// ShardState is one shard sub-ledger's exported aggregate state — everything
// except the live streams, which are exported per stream (ExportStream) so
// restore can re-route them.
type ShardState struct {
	// RetiredSpent is the archived stream spend (evictions + rotations).
	RetiredSpent float64 `json:"retired_spent"`
	// RetiredByEpoch is RetiredSpent broken down by retired budget epoch.
	RetiredByEpoch []EpochSpend `json:"retired_by_epoch,omitempty"`
	// RetiredQueries is the archived per-query attribution.
	RetiredQueries map[string]float64 `json:"retired_queries,omitempty"`
	// LiveQueries is the live epoch's per-query attribution.
	LiveQueries map[string]float64 `json:"live_queries,omitempty"`
	// Admitted, Denied, Suppressed, Throttled are the shard's decision
	// counters.
	Admitted   int64 `json:"admitted"`
	Denied     int64 `json:"denied"`
	Suppressed int64 `json:"suppressed"`
	Throttled  int64 `json:"throttled"`
}

// ExportStream exports one stream ledger's budget position. Must run on the
// owning shard goroutine (or with it quiescent).
func ExportStream(sl *StreamLedger) StreamState {
	st := StreamState{
		Epoch:       sl.epoch.Load(),
		Spent:       sl.sum.Value(),
		MaxComposed: sl.maxComposed.load(),
		RingAt:      sl.ringAt,
		Admitted:    sl.admitted.Load(),
		Denied:      sl.denied.Load(),
		Suppressed:  sl.suppressed.Load(),
	}
	if len(sl.ring) > 0 {
		st.Ring = append([]float64(nil), sl.ring...)
	}
	return st
}

// RestoreStream registers a stream restored from st and returns its ledger,
// like OpenStream for a recovered feed. The composed loss is recomputed from
// the restored ring.
func (sh *ShardLedger) RestoreStream(key string, st StreamState) *StreamLedger {
	sl := &StreamLedger{}
	sl.epoch.Store(st.Epoch)
	sl.sum.Add(st.Spent)
	sl.spent.store(sl.sum.Value())
	if len(st.Ring) > 0 {
		sl.ring = append([]float64(nil), st.Ring...)
		sl.ringAt = st.RingAt % len(sl.ring)
		var s float64
		for _, c := range sl.ring {
			s += c
		}
		sl.composed.store(s)
	}
	maxC := st.MaxComposed
	if c := sl.composed.load(); c > maxC {
		maxC = c
	}
	sl.maxComposed.store(maxC)
	sl.admitted.Add(st.Admitted)
	sl.denied.Add(st.Denied)
	sl.suppressed.Add(st.Suppressed)
	sh.mu.Lock()
	sh.streams[key] = sl
	sh.mu.Unlock()
	return sl
}

// ExportState exports the shard's aggregate state. Must run with the owning
// shard quiescent.
func (sh *ShardLedger) ExportState() ShardState {
	st := ShardState{
		RetiredSpent: sh.retiredSum.Value(),
		Admitted:     sh.admitted.Load(),
		Denied:       sh.denied.Load(),
		Suppressed:   sh.suppressed.Load(),
		Throttled:    sh.throttled.Load(),
	}
	sh.mu.Lock()
	for epoch, v := range sh.retiredByEpoch {
		st.RetiredByEpoch = append(st.RetiredByEpoch, EpochSpend{Epoch: epoch, Spent: v})
	}
	if len(sh.retired) > 0 {
		st.RetiredQueries = make(map[string]float64, len(sh.retired))
		for name, v := range sh.retired {
			st.RetiredQueries[name] = v
		}
	}
	sh.mu.Unlock()
	sort.Slice(st.RetiredByEpoch, func(i, j int) bool {
		return st.RetiredByEpoch[i].Epoch < st.RetiredByEpoch[j].Epoch
	})
	qs := sh.queries.Load()
	for i, name := range qs.names {
		if v := qs.cells[i].load(); v != 0 {
			if st.LiveQueries == nil {
				st.LiveQueries = make(map[string]float64)
			}
			st.LiveQueries[name] = v
		}
	}
	return st
}

// RestoreAggregates merges st into the shard — merges, not overwrites, so a
// restart with fewer shards can fold several old shards' aggregates into one.
// Must run before the shard starts serving.
func (sh *ShardLedger) RestoreAggregates(st ShardState) {
	sh.admitted.Add(st.Admitted)
	sh.denied.Add(st.Denied)
	sh.suppressed.Add(st.Suppressed)
	sh.throttled.Add(st.Throttled)
	if st.RetiredSpent != 0 {
		sh.retiredSum.Add(st.RetiredSpent)
		sh.retiredSpent.store(sh.retiredSum.Value())
	}
	sh.mu.Lock()
	for _, es := range st.RetiredByEpoch {
		sh.retiredByEpoch[es.Epoch] += es.Spent
	}
	for name, v := range st.RetiredQueries {
		sh.retired[name] += v
	}
	sh.mu.Unlock()
	if len(st.LiveQueries) == 0 {
		return
	}
	// Restored live attribution follows the restart's installed query set:
	// names still registered keep accumulating in their live cells; names
	// that disappeared across the restart fold into the retired archive,
	// exactly like an unregistration (SetQueries only runs on the next
	// control-state change, so restore must not leave stale names live).
	qs := sh.queries.Load()
	sh.mu.Lock()
	for name, v := range st.LiveQueries {
		if i := sort.SearchStrings(qs.names, name); i < len(qs.names) && qs.names[i] == name {
			qs.cells[i].add(v)
		} else {
			sh.retired[name] += v
		}
	}
	sh.mu.Unlock()
}

// RestoreRotations restores the applied-rotation count from a checkpoint.
func (l *Ledger) RestoreRotations(n int64) { l.rotations.Add(n) }

// ReplayWindow re-applies one WAL window record's ledger effects during
// recovery: the same lazy epoch rotation, charge accumulation, ring push,
// and counters as the live Decide path, without making a fresh decision —
// the decision already happened, pre-crash, and may have been published.
// Admitted replays attribute their charge to the restart-time query set.
// Must run before the shard starts serving.
func (l *Ledger) ReplayWindow(sh *ShardLedger, sl *StreamLedger, d Decision, charge float64, epoch uint64) {
	if sl.epoch.Load() != epoch {
		sh.rotateStream(sl, epoch)
	}
	switch d {
	case Admitted:
		sl.sum.Add(charge)
		sl.spent.store(sl.sum.Value())
		sl.pushRing(l.overlap, charge)
		sl.admitted.Inc()
		sh.admitted.Inc()
		sh.ChargeQueries(charge)
	case Denied:
		sl.pushRing(l.overlap, 0)
		sl.denied.Inc()
		sh.denied.Inc()
	case Throttled:
		sl.pushRing(l.overlap, 0)
		sl.suppressed.Inc()
		sh.throttled.Inc()
	default: // Suppressed (and Rotate's fallback suppression)
		sl.pushRing(l.overlap, 0)
		sl.suppressed.Inc()
		sh.suppressed.Inc()
	}
}
