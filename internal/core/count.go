package core

import (
	"fmt"
	"math/rand"

	"patterndp/internal/dp"
	"patterndp/internal/event"
)

// CountPPM extends pattern-level DP from binary answers to per-window event
// counts — the numerical-answer direction the paper points at in Section V
// ("drivers can be interested in the numbers of nearby passengers").
//
// For each private pattern type the total budget ε is split evenly over the
// m elements; each element type's per-window count is released through the
// geometric mechanism with budget ε_i and sensitivity 1 (two pattern-level
// neighbors differ in one element event, changing one count by one).
// Sequential composition over the elements yields pattern-level ε-DP, by the
// same argument as Theorem 1 with the randomized-response factors replaced
// by geometric-mechanism likelihood ratios.
//
// CountPPM also implements Mechanism: released indicators are the noisy
// counts thresholded at 0.5, so it can be compared in the binary harness.
type CountPPM struct {
	private []PatternType
	eps     dp.Epsilon
	// budgets lists, per event type, the per-element budgets of each
	// private pattern claiming it (noise composes by sequential addition).
	budgets map[event.Type][]dp.Epsilon
}

// NewCountPPM configures the mechanism with a total per-pattern budget.
func NewCountPPM(eps dp.Epsilon, private ...PatternType) (*CountPPM, error) {
	if !eps.Valid() || eps == 0 {
		return nil, fmt.Errorf("core: count PPM needs a positive budget, got %v", eps)
	}
	if len(private) == 0 {
		return nil, fmt.Errorf("core: count PPM needs at least one private pattern type")
	}
	c := &CountPPM{eps: eps, budgets: make(map[event.Type][]dp.Epsilon)}
	for _, pt := range private {
		if pt.Len() == 0 {
			return nil, fmt.Errorf("core: private pattern type %q has no elements", pt.Name)
		}
		per := eps / dp.Epsilon(pt.Len())
		for _, t := range pt.Elements {
			c.budgets[t] = append(c.budgets[t], per)
		}
		c.private = append(c.private, pt)
	}
	return c, nil
}

// Name implements Mechanism.
func (c *CountPPM) Name() string { return "count" }

// TotalEpsilon implements Mechanism.
func (c *CountPPM) TotalEpsilon() dp.Epsilon { return c.eps }

// Private returns the configured private pattern types.
func (c *CountPPM) Private() []PatternType { return c.private }

// ElementBudget returns the smallest per-release budget applied to an event
// type's count (the binding constraint when several patterns claim it), or 0
// if the type is not protected.
func (c *CountPPM) ElementBudget(t event.Type) dp.Epsilon {
	bs := c.budgets[t]
	if len(bs) == 0 {
		return 0
	}
	min := bs[0]
	for _, b := range bs[1:] {
		if b < min {
			min = b
		}
	}
	return min
}

// ReleaseCounts releases one window's per-type counts. Counts of types not
// claimed by any private pattern pass through exactly. Protected types are
// noised once per claiming pattern (independent sequential releases compose;
// the noisiest release is returned, which is the information actually safe
// to publish).
func (c *CountPPM) ReleaseCounts(rng *rand.Rand, counts map[event.Type]int) (map[event.Type]int64, error) {
	out := make(map[event.Type]int64, len(counts))
	for _, t := range sortedCountTypes(counts) {
		truth := int64(counts[t])
		bs := c.budgets[t]
		if len(bs) == 0 {
			out[t] = truth
			continue
		}
		released := truth
		worstNoise := int64(0)
		first := true
		for _, b := range bs {
			noise, err := dp.Geometric(rng, 1, b)
			if err != nil {
				return nil, err
			}
			if first || absInt64(noise) > absInt64(worstNoise) {
				worstNoise = noise
				first = false
			}
		}
		released = truth + worstNoise
		if released < 0 {
			released = 0 // counts are non-negative; clamping is post-processing
		}
		out[t] = released
	}
	return out, nil
}

// Run implements Mechanism by thresholding released counts to indicators.
// Every tracked type is released, including those with zero counts — a type
// whose absence is released exactly would break the DP guarantee (its
// presence bit would be deterministic), so zero counts are noised too.
func (c *CountPPM) Run(rng *rand.Rand, wins []IndicatorWindow) []map[event.Type]bool {
	out := make([]map[event.Type]bool, len(wins))
	for i, w := range wins {
		full := make(map[event.Type]int, len(w.Present))
		for t := range w.Present {
			full[t] = w.Counts[t] // zero when absent from Counts
		}
		counts, err := c.ReleaseCounts(rng, full)
		if err != nil {
			// Construction validated all budgets; release cannot fail.
			panic(err)
		}
		rel := make(map[event.Type]bool, len(w.Present))
		for t := range w.Present {
			rel[t] = counts[t] >= 1
		}
		out[i] = rel
	}
	return out
}

func sortedCountTypes(counts map[event.Type]int) []event.Type {
	out := make([]event.Type, 0, len(counts))
	for t := range counts {
		out = append(out, t)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func absInt64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
