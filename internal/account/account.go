// Package account is the privacy-budget accounting and admission-control
// subsystem of the streaming runtime: a windowed, per-stream generalization
// of dp.Accountant wired into the answer-publish path.
//
// The unit of charge is one released window answer batch for one stream:
// every window the runtime releases for a stream spends the serving
// mechanism's per-window pattern-level budget (Mechanism.TotalEpsilon) from
// that stream's grant — answering n target queries from one release is
// post-processing and is charged once. Two composed quantities are tracked
// per stream:
//
//   - Spent: the sequential composition Σ ε over every window released in
//     the current budget epoch — the conservative epoch-lifetime bound the
//     grant is enforced against. Sums are Neumaier-compensated (dp.Sum), so
//     enforcement is exact to ulp scale no matter how many releases compose.
//   - Composed: the w-event bound of Kellaris et al. applied to sliding
//     overlap — the sum of charges over the last width/slide released
//     windows, i.e. the worst-case privacy loss of any single event, since
//     an event contributes to at most overlap consecutive windows. Under
//     tumbling windows this is the last release's charge (event-level DP).
//
// Streams are partitioned across shards by key, so shard sub-ledgers hold
// disjoint data and compose in parallel: the runtime-level per-subject
// guarantee is the maximum per-stream spend (Snapshot.MaxStreamSpent /
// MaxComposed), while Snapshot.Spent totals spend across streams for
// attribution. Each ShardLedger and its StreamLedgers have exactly one
// writer — the owning shard goroutine — so the publish path takes no locks:
// all published values live in single-writer atomic cells that Snapshot
// readers load concurrently. The shard-level mutex guards only the stream
// registry (open/evict) and the retired-spend archive, never a charge.
//
// When a release would push a stream past its grant, the configured Policy
// decides the outcome: Deny refuses the release, Suppress publishes a
// data-independent placeholder answer (ε-free), Throttle halves the answer
// cadence once the stream nears exhaustion and denies past it, and
// RotateEpoch forces a control-plane budget-epoch rotation with a fresh
// grant. Grants are per (stream, budget epoch); rotation archives the old
// epoch's spend and restarts accumulation, and every answer carries the
// control-plane epoch it was served under so auditors can scope the
// guarantee to an epoch.
package account

import (
	"fmt"
	"math"
	"sync/atomic"

	"patterndp/internal/dp"
)

// Policy selects what the runtime does with a window release that a stream's
// remaining budget cannot cover.
type Policy int

const (
	// Deny refuses the release: the window is counted but answers nothing,
	// exactly as if no query were registered. The strictest policy — the
	// released answer stream provably never composes past the grant.
	Deny Policy = iota
	// Suppress publishes a data-independent placeholder: one answer per
	// query with Suppressed set and no detection, computed without touching
	// the window's data (ε-free). Consumers keep the answer cadence and an
	// explicit exhaustion signal, but no information.
	Suppress
	// Throttle degrades before exhausting: once a stream's remaining budget
	// falls under the low-water fraction of its grant (ThrottleAt), only
	// every other window is released — the skipped ones are suppressed,
	// stretching the remaining budget over twice the stream time. A release
	// the budget cannot cover at all is denied.
	Throttle
	// RotateEpoch forces a control-plane budget-epoch rotation with a fresh
	// grant when a stream exhausts. The triggering window is suppressed;
	// the new epoch (and grant) applies from the next window boundary, and
	// answers after it carry the new epoch. The guarantee becomes per
	// epoch — rotation is the explicit, audited decision to start a new one.
	RotateEpoch
)

// String names the policy for logs and flags.
func (p Policy) String() string {
	switch p {
	case Deny:
		return "deny"
	case Suppress:
		return "suppress"
	case Throttle:
		return "throttle"
	case RotateEpoch:
		return "rotate-epoch"
	default:
		return "unknown"
	}
}

// Valid reports whether p is a known policy.
func (p Policy) Valid() bool { return p >= Deny && p <= RotateEpoch }

// ParsePolicy parses a policy name as printed by String.
func ParsePolicy(s string) (Policy, error) {
	for p := Deny; p <= RotateEpoch; p++ {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("account: unknown budget policy %q", s)
}

// Decision is the admission-control verdict for one window release.
type Decision int

const (
	// Admitted means the release was charged and may be published.
	Admitted Decision = iota
	// Denied means the release must not be published at all.
	Denied
	// Suppressed means a data-independent placeholder may be published.
	Suppressed
	// Throttled is Suppressed by the Throttle policy's cadence halving —
	// counted separately so operators can tell graceful degradation from
	// exhaustion.
	Throttled
	// Rotate means the RotateEpoch policy wants a budget-epoch rotation:
	// the caller requests one from the control plane, records the
	// triggering window via Ledger.Suppress, and serves the fresh grant
	// from the next window boundary.
	Rotate
)

// String names the decision for logs and tests.
func (d Decision) String() string {
	switch d {
	case Admitted:
		return "admitted"
	case Denied:
		return "denied"
	case Suppressed:
		return "suppressed"
	case Throttled:
		return "throttled"
	case Rotate:
		return "rotate"
	default:
		return "unknown"
	}
}

// Outcome is one admission decision with the stream's post-decision budget
// position, for stamping onto published answers.
type Outcome struct {
	// Decision is the verdict.
	Decision Decision
	// Spent is the stream's sequential spend in its current budget epoch,
	// after this decision's charge (if any).
	Spent dp.Epsilon
	// Remaining is the unspent grant (never negative).
	Remaining dp.Epsilon
}

// epsCell is a float64 published by exactly one writer goroutine and loaded
// by concurrent readers. The single-writer discipline makes load-modify-store
// race-free without CAS loops.
type epsCell struct{ bits atomic.Uint64 }

func (c *epsCell) load() float64   { return math.Float64frombits(c.bits.Load()) }
func (c *epsCell) store(v float64) { c.bits.Store(math.Float64bits(v)) }
func (c *epsCell) add(v float64)   { c.store(c.load() + v) }
