package runtime

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"patterndp/internal/account"
	"patterndp/internal/dp"
	"patterndp/internal/durable"
	"patterndp/internal/event"
	"patterndp/internal/stream"
)

// FsyncPolicy selects when WAL appends are forced to stable storage,
// re-exported from internal/durable: FsyncInterval (default), FsyncAlways,
// FsyncOff. See DurabilityConfig.
type FsyncPolicy = durable.FsyncPolicy

// Fsync policies, re-exported from internal/durable.
const (
	// FsyncInterval syncs on a background interval: process crashes lose
	// nothing (appends bypass user-space buffering), an OS crash loses at
	// most the last interval.
	FsyncInterval = durable.FsyncInterval
	// FsyncAlways syncs before every publish: full durability, and the
	// publish path inherits the disk's sync latency.
	FsyncAlways = durable.FsyncAlways
	// FsyncOff syncs only at checkpoints and on Close.
	FsyncOff = durable.FsyncOff
)

// ParseFsyncPolicy parses a policy name — "interval" | "always" | "off" —
// for CLI flags.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return durable.ParseFsyncPolicy(s) }

// DurabilityConfig enables the durable-state subsystem: a write-ahead log of
// ledger charges, epoch rotations, and registration changes — appended
// before an answer is published — plus periodic checkpoints of windower and
// ledger state, so privacy spend survives restarts. See Config.Durability.
type DurabilityConfig struct {
	// Dir is the WAL directory (required). Reusing a non-empty directory
	// recovers its state: New restores the latest checkpoint, replays the
	// WAL tail, and resumes serving from the recovered epochs; Recovery
	// reports what was restored.
	Dir string
	// Fsync selects the sync policy. Default: FsyncInterval.
	Fsync FsyncPolicy
	// FsyncInterval is the background sync cadence under the FsyncInterval
	// policy. Default: 100ms.
	FsyncInterval time.Duration
	// SegmentBytes bounds a WAL segment file's size. Default: 64 MiB.
	SegmentBytes int64
	// CheckpointEvery, when positive, checkpoints on that cadence in the
	// background. A checkpoint also runs on graceful Close, and Checkpoint
	// triggers one on demand.
	CheckpointEvery time.Duration
}

// RecoverySummary reports what New restored from a non-empty WAL directory.
type RecoverySummary struct {
	// CheckpointID is the restored checkpoint's ID (0 if the directory had
	// only WAL segments).
	CheckpointID uint64
	// Epoch and BudgetEpoch are the control-plane epochs serving resumed
	// from.
	Epoch       Epoch
	BudgetEpoch Epoch
	// Streams counts stream states restored (checkpoint plus replay).
	Streams int
	// ReplayedRecords counts WAL tail records replayed on top of the
	// checkpoint (shard and control records).
	ReplayedRecords int
	// ReplayedSpend is the ε re-charged by replayed admitted windows.
	ReplayedSpend dp.Epsilon
	// RestoredSpend is the ε restored from the checkpoint (live stream
	// spend plus the retired archive).
	RestoredSpend dp.Epsilon
	// Registrations counts registration-change records in the replayed
	// tail. They are an audit trail: the restart's Config supplies the
	// actual private/target sets.
	Registrations int
	// Truncated reports that a torn or corrupted WAL tail was detected and
	// cleanly ignored — the expected shape of a crash.
	Truncated bool
	// SkippedCheckpoints counts checkpoint files that failed CRC validation
	// and were skipped for an older one.
	SkippedCheckpoints int
}

// ErrDurabilityDisabled is returned by Checkpoint when the runtime was built
// without Config.Durability.
var ErrDurabilityDisabled = errors.New("runtime: durability not configured")

// Recovery returns what New restored from the WAL directory, or nil when the
// runtime started fresh (no Durability, or an empty directory).
func (rt *Runtime) Recovery() *RecoverySummary { return rt.recov }

// shardCkptResult is one shard's reply to a checkpoint request.
type shardCkptResult struct {
	sc  durable.ShardCheckpoint
	err error
}

// Checkpoint snapshots the runtime's durable state — every shard's windower
// and ledger state at a quiescent point of its serve loop, stamped with the
// WAL positions already reflected in it — and persists it, pruning WAL
// segments the checkpoint supersedes. Recovery then costs one checkpoint
// load plus the WAL tail. Safe to call while serving; returns ErrClosed
// after Close and ErrDurabilityDisabled without Config.Durability.
func (rt *Runtime) Checkpoint(ctx context.Context) error {
	if rt.durLog == nil {
		return ErrDurabilityDisabled
	}
	// The request flows through each shard's ingest channel so the shard
	// exports between batches — a point where its ledger, windowers, and
	// appender LSN are mutually consistent. The reply channel is buffered
	// for every shard, so replies never block a shard, and the sends below
	// happen under rt.mu like every ingest: a racing Close drains and
	// answers them before shutting the channels.
	reply := make(chan shardCkptResult, len(rt.shards))
	rt.mu.RLock()
	if rt.closed {
		rt.mu.RUnlock()
		return ErrClosed
	}
	sent := 0
	for _, sh := range rt.shards {
		select {
		case sh.in <- ingestMsg{ckpt: reply}:
			sent++
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
	}
	rt.mu.RUnlock()
	ck := &durable.Checkpoint{Shards: make([]durable.ShardCheckpoint, 0, sent)}
	var firstErr error
	for i := 0; i < sent; i++ {
		res := <-reply
		if res.err != nil && firstErr == nil {
			firstErr = res.err
		}
		ck.Shards = append(ck.Shards, res.sc)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if firstErr != nil {
		return firstErr
	}
	return rt.writeCheckpoint(ck)
}

// writeCheckpoint stamps the epoch fields onto an assembled per-shard
// snapshot and persists it. Control records appended concurrently may land
// just past ControlLSN and be replayed on top of the checkpoint — harmless,
// because rotation replay is a max() over epochs and registration records
// are audit-only.
func (rt *Runtime) writeCheckpoint(ck *durable.Checkpoint) error {
	sort.Slice(ck.Shards, func(i, j int) bool { return ck.Shards[i].Shard < ck.Shards[j].Shard })
	ctl := rt.ctl.Load()
	ck.CtlEpoch = uint64(ctl.epoch)
	ck.BudgetEpoch = uint64(ctl.budgetEpoch)
	ck.ControlLSN = rt.durLog.Control().LSN()
	if rt.ledger != nil {
		ck.Rotations = uint64(rt.ledger.Rotations())
	}
	return rt.durLog.WriteCheckpoint(ck)
}

// exportCheckpoint builds the shard's slice of a checkpoint. It runs on the
// shard goroutine between batches (or after the drain), so every field it
// reads is quiescent and consistent with the appender's committed LSN.
func (s *shard) exportCheckpoint() durable.ShardCheckpoint {
	sc := durable.ShardCheckpoint{Shard: s.id, WalLSN: s.wal.LSN()}
	if s.led != nil {
		sc.Ledger = s.led.ExportState()
	}
	keys := make([]string, 0, len(s.streams))
	for k := range s.streams {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		st := s.streams[key]
		stc := durable.StreamCheckpoint{Key: key, Next: st.next, Windower: exportWindower(st.win)}
		if st.bud != nil {
			stc.Budget = account.ExportStream(st.bud)
		}
		sc.Streams = append(sc.Streams, stc)
	}
	return sc
}

// checkpointLoop runs the CheckpointEvery cadence until close.
func (rt *Runtime) checkpointLoop(every time.Duration) {
	defer rt.ckptWG.Done()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-rt.ckptStop:
			return
		case <-tick.C:
			if err := rt.Checkpoint(context.Background()); err != nil {
				// ErrClosed ends the loop; a crash (injected or real WAL
				// failure) has already failed the shards, which Close
				// reports — either way the loop is done.
				return
			}
		}
	}
}

// finalCheckpoint runs after the drain on a graceful close: the shard
// goroutines have exited (windowers flushed, trailing answers published), so
// the export runs synchronously and captures the complete final state.
func (rt *Runtime) finalCheckpoint() error {
	ck := &durable.Checkpoint{Shards: make([]durable.ShardCheckpoint, 0, len(rt.shards))}
	for _, sh := range rt.shards {
		ck.Shards = append(ck.Shards, sh.exportCheckpoint())
	}
	return rt.writeCheckpoint(ck)
}

// walDecision maps a ledger admission decision to its WAL record value.
func walDecision(d account.Decision) durable.Decision {
	switch d {
	case account.Admitted:
		return durable.DecisionAdmitted
	case account.Denied:
		return durable.DecisionDenied
	case account.Throttled:
		return durable.DecisionThrottled
	default:
		return durable.DecisionSuppressed
	}
}

// ledgerDecision maps a WAL decision back for replay (DecisionSkipped is
// handled separately — it never reaches the ledger's decision paths).
func ledgerDecision(d durable.Decision) account.Decision {
	switch d {
	case durable.DecisionAdmitted:
		return account.Admitted
	case durable.DecisionDenied:
		return account.Denied
	case durable.DecisionThrottled:
		return account.Throttled
	default:
		return account.Suppressed
	}
}

// logControl appends a control-plane WAL record after a successful mutation.
// Rotation records make the budget epoch recoverable (recovery resumes from
// the max of checkpoint and replayed rotations, so ordering races between
// concurrent mutations are harmless); registration records are an audit
// trail. An append error is returned to the mutating caller: the in-memory
// change already happened and is privacy-safe without the record (a lost
// rotation can only under-advance the recovered epoch, which withholds fresh
// grants rather than minting them).
func (rt *Runtime) logControl(append func(*durable.Appender) error) error {
	if rt.durLog == nil {
		return nil
	}
	if err := append(rt.durLog.Control()); err != nil && err != durable.ErrCrashed {
		return fmt.Errorf("runtime: control WAL: %w", err)
	}
	return nil
}

// applyRecoveredEpochs seeds the construction control state with the
// recovered epochs: the budget epoch is the max of the checkpoint's and any
// replayed rotation records' (a rotation whose record landed after the
// checkpoint cut must not be lost — re-granting spent streams would
// under-count), and the control epoch resumes at or past both so epoch
// numbering stays monotonic across the restart.
func applyRecoveredEpochs(st *controlState, rec *durable.Recovery) {
	var budget, ctl uint64
	if ck := rec.Checkpoint; ck != nil {
		budget, ctl = ck.BudgetEpoch, ck.CtlEpoch
	}
	if b, c := rec.MaxRotationEpoch(); true {
		if b > budget {
			budget = b
		}
		if c > ctl {
			ctl = c
		}
	}
	for _, r := range rec.ControlTail {
		if r.Kind == durable.KindRegistration && r.CtlEpoch > ctl {
			ctl = r.CtlEpoch
		}
	}
	if budget > ctl {
		ctl = budget
	}
	st.epoch = Epoch(ctl)
	st.budgetEpoch = Epoch(budget)
}

// restore applies a Recovery to the freshly built (not yet serving) runtime:
// checkpointed ledger aggregates and stream states are restored — re-routed
// through the configured sharder, so the restart may use a different shard
// count — and the WAL tail is replayed on top. Replay is the recovery
// invariant's mechanism: every charge the WAL holds is re-applied whether or
// not its answer was published, so recovered spend can over-count but never
// under-count published answers.
func (rt *Runtime) restore(rec *durable.Recovery) error {
	sum := &RecoverySummary{
		Epoch:              rt.ctl.Load().epoch,
		BudgetEpoch:        rt.ctl.Load().budgetEpoch,
		Truncated:          rec.Truncated,
		SkippedCheckpoints: rec.SkippedCheckpoints,
	}
	var restored dp.Sum
	if ck := rec.Checkpoint; ck != nil {
		sum.CheckpointID = ck.ID
		if rt.ledger != nil {
			rt.ledger.RestoreRotations(int64(ck.Rotations))
		}
		for _, sc := range ck.Shards {
			if rt.ledger != nil {
				// Shard-level aggregates have no stream key to re-route by;
				// folding by modulus keeps them deterministic across
				// restarts with any shard count.
				rt.ledger.Shard(sc.Shard % len(rt.shards)).RestoreAggregates(sc.Ledger)
				restored.Add(sc.Ledger.RetiredSpent)
			}
			for _, stc := range sc.Streams {
				sh := rt.shards[rt.cfg.Sharder.Shard(stc.Key, len(rt.shards))]
				st := &streamState{win: rt.cfg.newWindower(), next: stc.Next}
				restoreWindower(st.win, stc.Windower)
				if sh.led != nil {
					st.bud = sh.led.RestoreStream(stc.Key, stc.Budget)
					restored.Add(stc.Budget.Spent)
				}
				sh.streams[stc.Key] = st
				sh.stats.streams.Inc()
			}
		}
	}
	sum.RestoredSpend = dp.Epsilon(restored.Value())

	var replayed dp.Sum
	for _, r := range rec.Tail {
		sum.ReplayedRecords++
		sh := rt.shards[rt.cfg.Sharder.Shard(r.Stream, len(rt.shards))]
		switch r.Kind {
		case durable.KindWindow:
			st := sh.streams[r.Stream]
			if st == nil {
				// The stream appeared after the checkpoint cut; its events
				// are lost but its charges are not.
				st = &streamState{win: rt.cfg.newWindower()}
				if sh.led != nil {
					st.bud = sh.led.OpenStream(r.Stream, r.BudgetEpoch)
				}
				sh.streams[r.Stream] = st
				sh.stats.streams.Inc()
			}
			if r.WindowIdx < int64(st.next) {
				continue // already covered by the checkpoint
			}
			if sh.led != nil {
				if r.Decision == durable.DecisionSkipped {
					rt.ledger.Skip(st.bud, 1)
				} else {
					rt.ledger.ReplayWindow(sh.led, st.bud, ledgerDecision(r.Decision), r.Charge, r.BudgetEpoch)
					if r.Decision == durable.DecisionAdmitted {
						replayed.Add(r.Charge)
					}
				}
			}
			st.win.advanceTo(event.Timestamp(r.WindowStart) + rt.cfg.WindowWidth)
			st.next = int(r.WindowIdx) + 1
		case durable.KindEvict:
			if sh.streams[r.Stream] == nil {
				continue // evicted before the checkpoint cut; nothing held
			}
			delete(sh.streams, r.Stream)
			if sh.led != nil {
				sh.led.EvictStream(r.Stream)
			}
			sh.stats.streamsEvicted.Inc()
		}
	}
	for _, r := range rec.ControlTail {
		sum.ReplayedRecords++
		switch r.Kind {
		case durable.KindRotation:
			if rt.ledger != nil {
				rt.ledger.CountRotation()
			}
		case durable.KindRegistration:
			sum.Registrations++
		}
	}
	sum.ReplayedSpend = dp.Epsilon(replayed.Value())
	for _, sh := range rt.shards {
		sum.Streams += len(sh.streams)
	}
	rt.recov = sum
	return nil
}

// exportWindower serializes one stream's windowing state: watermark
// position, reorder buffer (via the event JSON codec), and the pane tally
// ring (via stream.TypeCounts' exported shape). slotCounts are derived state
// and rebuilt from the pending events on restore.
func exportWindower(w *Windower) durable.WindowerState {
	ws := durable.WindowerState{
		Started:   w.started,
		NextStart: w.nextStart,
		MaxTime:   w.maxTime,
		Dropped:   w.dropped,
		Panes:     w.panes,
	}
	if len(w.pending) > 0 {
		ws.Pending = append([]event.Event(nil), w.pending...)
	}
	if w.overlap > 1 && w.ring.n > 0 {
		ws.Ring = make([]stream.TypeCounts, w.ring.n)
		for i := 0; i < w.ring.n; i++ {
			ws.Ring[i] = w.ring.slots[(w.ring.head+i)%w.ring.overlap].Clone()
		}
	}
	return ws
}

// restoreWindower is exportWindower's inverse, applied to a fresh windower.
func restoreWindower(w *Windower, ws durable.WindowerState) {
	w.started = ws.Started
	w.nextStart = ws.NextStart
	w.maxTime = ws.MaxTime
	w.dropped = ws.Dropped
	w.panes = ws.Panes
	w.pending = append(w.pending[:0], ws.Pending...)
	w.rebuildSlots()
	if w.overlap > 1 {
		for _, tally := range ws.Ring {
			w.ring.push(tally.Clone())
		}
	}
}

// rebuildSlots recomputes the per-slot population counts from the pending
// events after a restore or replay advance.
func (w *Windower) rebuildSlots() {
	w.slotCounts = w.slotCounts[:0]
	for _, e := range w.pending {
		idx := int((stream.AlignDown(e.Time, w.slide) - w.nextStart) / w.slide)
		for idx >= len(w.slotCounts) {
			w.slotCounts = append(w.slotCounts, 0)
		}
		w.slotCounts[idx]++
	}
}

// advanceTo moves the windower past every window ending at or before target
// without cutting them — they were cut, charged, and possibly published
// before the crash; replay must not re-emit them. Skipped panes enter the
// ring empty (their events are lost with the crash — the WAL logs decisions,
// not events) and pending events the advance strands are dropped: their
// windows are already accounted for.
func (w *Windower) advanceTo(target event.Timestamp) {
	if !w.started {
		w.started = true
		w.nextStart = target
		w.maxTime = target
		return
	}
	if target <= w.nextStart {
		return
	}
	for w.nextStart < target {
		if w.overlap > 1 {
			w.ring.push(w.ring.takeSlot())
		}
		w.nextStart += w.slide
		w.panes++
	}
	if w.maxTime < w.nextStart {
		w.maxTime = w.nextStart
	}
	kept := w.pending[:0]
	for _, e := range w.pending {
		if e.Time >= w.nextStart {
			kept = append(kept, e)
		}
	}
	w.pending = kept
	w.rebuildSlots()
}
