package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("ppm_test_events_total", "events", L("shard", "0"))
	c2 := r.Counter("ppm_test_events_total", "events", L("shard", "0"))
	if c1 != c2 {
		t.Fatalf("same name+labels returned distinct counters")
	}
	c3 := r.Counter("ppm_test_events_total", "events", L("shard", "1"))
	if c1 == c3 {
		t.Fatalf("distinct labels returned same counter")
	}
	h1 := r.Histogram("ppm_test_latency_seconds", "latency")
	h2 := r.Histogram("ppm_test_latency_seconds", "latency")
	if h1 != h2 {
		t.Fatalf("same histogram name returned distinct histograms")
	}
}

func TestRegistryLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Gauge("ppm_test_depth", "", L("a", "1"), L("b", "2"))
	b := r.Gauge("ppm_test_depth", "", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatalf("label order changed series identity")
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestRegistryNamingLint(t *testing.T) {
	r := NewRegistry()
	mustPanic(t, "no prefix", func() { r.Counter("events_total", "") })
	mustPanic(t, "uppercase", func() { r.Counter("ppm_Events_total", "") })
	mustPanic(t, "double underscore", func() { r.Counter("ppm__events_total", "") })
	mustPanic(t, "trailing underscore", func() { r.Gauge("ppm_depth_", "") })
	mustPanic(t, "counter suffix", func() { r.Counter("ppm_events", "") })
	mustPanic(t, "histogram suffix", func() { r.Histogram("ppm_latency", "") })
	mustPanic(t, "gauge with _total", func() { r.Gauge("ppm_events_total", "") })
	mustPanic(t, "bad label key", func() { r.Counter("ppm_x_total", "", L("0bad", "v")) })
	mustPanic(t, "dup label key", func() { r.Counter("ppm_y_total", "", L("k", "1"), L("k", "2")) })

	r.Counter("ppm_kind_total", "")
	mustPanic(t, "kind mismatch", func() { r.Gauge("ppm_kind_total", "") })

	r.CounterFunc("ppm_fn_total", "", func() float64 { return 1 })
	mustPanic(t, "dup func", func() { r.CounterFunc("ppm_fn_total", "", func() float64 { return 2 }) })
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Counter("not even a valid name", "").Inc() // nil registry skips validation
	r.Gauge("x", "").Inc()
	r.Histogram("y", "").Observe(time.Second)
	r.CounterFunc("z", "", func() float64 { return 1 })
	r.GaugeFunc("w", "", func() float64 { return 1 })
	if g := r.Gather(); g != nil {
		t.Fatalf("nil Gather = %v", g)
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("ppm_events_in_total", "Events admitted.", L("shard", "0")).Add(5)
	r.Counter("ppm_events_in_total", "Events admitted.", L("shard", "1")).Add(7)
	r.Gauge("ppm_conns_open", "Open connections.").Inc()
	r.GaugeFunc("ppm_epoch", "Control epoch.", func() float64 { return 42 })
	h := r.Histogram("ppm_serve_seconds", "Serve latency.", L("tenant", `a"b\c`))
	h.Observe(100 * time.Nanosecond)
	h.Observe(100 * time.Nanosecond)
	h.Observe(3 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP ppm_events_in_total Events admitted.\n",
		"# TYPE ppm_events_in_total counter\n",
		`ppm_events_in_total{shard="0"} 5` + "\n",
		`ppm_events_in_total{shard="1"} 7` + "\n",
		"# TYPE ppm_conns_open gauge\n",
		"ppm_conns_open 1\n",
		"ppm_epoch 42\n",
		"# TYPE ppm_serve_seconds histogram\n",
		`ppm_serve_seconds_bucket{tenant="a\"b\\c",le="+Inf"} 3` + "\n",
		`ppm_serve_seconds_count{tenant="a\"b\\c"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n---\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE ppm_events_in_total counter") != 1 {
		t.Errorf("TYPE line repeated per series:\n%s", out)
	}
	// Only non-empty buckets before +Inf: 3 observations in 2 buckets.
	if got := strings.Count(out, "ppm_serve_seconds_bucket"); got != 3 {
		t.Errorf("bucket lines = %d, want 3 (2 populated + Inf)\n%s", got, out)
	}
	// Cumulative bucket counts: the last finite bucket equals total count.
	if !strings.Contains(out, `le="+Inf"} 3`) {
		t.Errorf("+Inf bucket not cumulative total:\n%s", out)
	}
}

func TestGatherOrder(t *testing.T) {
	r := NewRegistry()
	r.Gauge("ppm_b_metric", "")
	r.Gauge("ppm_a_metric", "")
	g := r.Gather()
	if len(g) != 2 || g[0].Name != "ppm_b_metric" || g[1].Name != "ppm_a_metric" {
		t.Fatalf("gather not in registration order: %+v", g)
	}
}
