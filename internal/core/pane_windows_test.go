package core

import (
	"testing"

	"patterndp/internal/cep"
	"patterndp/internal/event"
	"patterndp/internal/stream"
)

// TestProcessWindowsTallyOnlyWindows pins that the engine serves
// pane-assembled windows — TypeCounts set, Events nil, as the sliding
// runtime emits them — exactly like fully materialized windows: same
// indicator inputs, same noise draws under the same seed, hence bit-for-bit
// identical answers.
func TestProcessWindowsTallyOnlyWindows(t *testing.T) {
	pt, err := NewPatternType("p", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	build := func() *PrivateEngine {
		// A small budget makes flips likely, so equal answers pin equal
		// randomness consumption, not just equal truth.
		ppm, err := NewUniformPPM(0.5, pt)
		if err != nil {
			t.Fatal(err)
		}
		pe, err := NewPrivateEngine(ppm, []PatternType{pt}, 99)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []cep.Query{
			{Name: "has-a", Pattern: cep.E("a"), Window: 10},
			{Name: "ab", Pattern: cep.SeqTypes("a", "b"), Window: 10},
			{Name: "not-c", Pattern: cep.NegOf(cep.E("c")), Window: 10},
		} {
			if err := pe.RegisterTarget(q); err != nil {
				t.Fatal(err)
			}
		}
		return pe
	}

	var evented, tallyOnly []stream.Window
	for i := 0; i < 12; i++ {
		base := event.Timestamp(i * 10)
		var evs []event.Event
		evs = append(evs, event.New("a", base+1))
		if i%2 == 0 {
			evs = append(evs, event.New("b", base+5))
		}
		if i%3 == 0 {
			evs = append(evs, event.New("c", base+7))
		}
		var tally stream.TypeCounts
		for _, e := range evs {
			tally = tally.Add(e.Type)
		}
		evented = append(evented, stream.Window{Start: base, End: base + 10, Events: evs, TypeCounts: tally})
		tallyOnly = append(tallyOnly, stream.Window{Start: base, End: base + 10, TypeCounts: tally})
	}

	a, err := build().ProcessWindows(evented)
	if err != nil {
		t.Fatal(err)
	}
	b, err := build().ProcessWindows(tallyOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("answer counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Query != b[i].Query || a[i].WindowIndex != b[i].WindowIndex || a[i].Detected != b[i].Detected {
			t.Errorf("answer %d: evented %+v, tally-only %+v", i, a[i], b[i])
		}
	}
}
