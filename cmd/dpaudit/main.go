// Command dpaudit empirically audits the pattern-level DP guarantee of the
// shipped mechanisms: it constructs neighboring inputs for a private pattern,
// samples releases, and reports the observed log-likelihood ratios against
// the claimed ε.
//
// Usage:
//
//	dpaudit -eps 1.0 -m 3 -trials 100000
//	dpaudit -serve -eps 1.0 -budget 8 -trials 20000
//	dpaudit -restart -eps 1.0 -budget 8
//
// With -serve it audits the streaming runtime's privacy-budget ledger
// end-to-end: a budgeted serving run (sliding windows, Deny policy) produces
// a ledger snapshot whose declared bounds — per-release charge, per-stream
// sequential spend vs. the grant, and the w-event composed per-event loss —
// are checked for internal consistency, and the per-release empirical ε̂
// measured on the same mechanism must not exceed the ledger's declared
// charge. The exit status is non-zero when the empirical measurement exceeds
// the declared bound, so CI can run it as a smoke gate.
//
// With -restart it audits the ledger across restart boundaries (see README
// "Durability"): a budgeted serving run writes a WAL, is abandoned without a
// graceful close (a simulated kill — no final checkpoint, no drain), and the
// recovered ledger's spend is held to the one-sided crash-safety invariant:
// it must cover the spend of every answer that was published before the
// kill (over-counting allowed, under-counting never). A second, graceful
// restart then checks the exact boundary: a drained close loses nothing and
// the rotated budget epoch is preserved. A third phase drives the serving
// layer across the same boundary: a reconnecting subscriber rides a
// drain/spill/restart cycle and its answer stream must keep one continuous
// sequence space that tiles exactly-once-or-explicit-gap — seq continuity,
// not just spend. Non-zero exit on violation, for the same CI audit job.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"patterndp/internal/cep"
	"patterndp/internal/core"
	"patterndp/internal/dp"
	"patterndp/internal/durable"
	"patterndp/internal/event"
	"patterndp/internal/runtime"
	"patterndp/internal/server"
)

func main() {
	var (
		eps    = flag.Float64("eps", 1.0, "claimed pattern-level budget")
		m      = flag.Int("m", 3, "private pattern length")
		trials = flag.Int("trials", 100000, "samples per neighbor input")
		seed   = flag.Int64("seed", 1, "audit seed")
		serve   = flag.Bool("serve", false, "audit the serving ledger: run a budgeted serving pass and compare declared vs empirical ε")
		restart = flag.Bool("restart", false, "audit the ledger across restart boundaries: kill + recover, hold recovered spend to published spend")
		budget  = flag.Float64("budget", 0, "per-stream grant for -serve/-restart (default 8 x eps)")
	)
	flag.Parse()
	var err error
	switch {
	case *restart:
		err = runRestart(*eps, *m, *seed, *budget)
	case *serve:
		err = runServe(*eps, *m, *trials, *seed, *budget)
	default:
		err = run(*eps, *m, *trials, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpaudit:", err)
		os.Exit(1)
	}
}

func run(eps float64, m, trials int, seed int64) error {
	pt, err := patternType(m)
	if err != nil {
		return err
	}
	uniform, err := core.NewUniformPPM(dp.Epsilon(eps), pt)
	if err != nil {
		return err
	}
	count, err := core.NewCountPPM(dp.Epsilon(eps), pt)
	if err != nil {
		return err
	}
	aud := core.Auditor{Trials: trials, Seed: seed}
	baseline := map[event.Type]bool{"public": true}

	for _, mech := range []core.Mechanism{uniform, count} {
		results, err := aud.AuditPattern(mech, pt, baseline, eps)
		if err != nil {
			return err
		}
		fmt.Printf("mechanism %q, claimed eps = %.3f, trials = %d\n",
			mech.Name(), eps, trials)
		for _, r := range results {
			label := "all elements"
			if r.Flipped != "" {
				label = "element " + string(r.Flipped)
			}
			fmt.Printf("  %-16s observed ratio %.4f\n", label, r.Certificate.MaxObservedRatio)
		}
		v := core.Summarize(results, 0.1)
		status := "PASS"
		if !v.Pass {
			status = "FAIL"
		}
		fmt.Printf("  verdict: %s (full-pattern %.4f vs eps %.3f + slack)\n\n",
			status, v.FullPattern, eps)
	}
	return nil
}

func patternType(m int) (core.PatternType, error) {
	elements := make([]event.Type, m)
	for i := range elements {
		elements[i] = event.Type(fmt.Sprintf("e%d", i+1))
	}
	return core.NewPatternType("audited", elements...)
}

// runServe audits the privacy-budget ledger: serve a small budgeted run,
// check the ledger's declared bounds for internal consistency, then measure
// the per-release empirical ε̂ on the same mechanism and hold it to the
// ledger's declared charge.
func runServe(eps float64, m, trials int, seed int64, budget float64) error {
	if budget <= 0 {
		budget = 8 * eps
	}
	// The empirical ratio estimator overshoots at small samples, and the
	// verdict's fixed slack assumes the estimate has converged — floor the
	// sample size so the gate fails only on real violations.
	const minServeTrials = 20000
	if trials < minServeTrials {
		fmt.Printf("raising -trials %d to %d: the serve-audit verdict needs a converged estimate\n",
			trials, minServeTrials)
		trials = minServeTrials
	}
	pt, err := patternType(m)
	if err != nil {
		return err
	}
	const (
		streams = 4
		slide   = event.Timestamp(10)
		overlap = 2
		windows = 40
	)
	cfg := runtime.Config{
		Shards:      2,
		WindowWidth: slide * overlap,
		Slide:       slide,
		Mechanism: func(int) (core.Mechanism, error) {
			return core.NewUniformPPM(dp.Epsilon(eps), pt)
		},
		Private:      []core.PatternType{pt},
		Targets:      []cep.Query{{Name: "audit-q", Pattern: cep.E(pt.Elements[0]), Window: slide * overlap}},
		Seed:         seed,
		Budget:       dp.Epsilon(budget),
		BudgetPolicy: runtime.BudgetDeny,
	}
	rt, err := runtime.New(cfg)
	if err != nil {
		return err
	}
	// Drain answers so publishing never stalls.
	sub, err := rt.Subscribe("")
	if err != nil {
		return err
	}
	done := make(chan struct{})
	var answers, released int
	go func() {
		defer close(done)
		for a := range sub.C() {
			answers++
			if !a.Suppressed {
				released++
			}
		}
	}()
	for s := 0; s < streams; s++ {
		key := fmt.Sprintf("audit-%d", s)
		for w := event.Timestamp(0); w < windows; w++ {
			for i, el := range pt.Elements {
				e := event.New(el, w*slide+event.Timestamp(i)).WithSource(key)
				if err := rt.Ingest(e); err != nil {
					return err
				}
			}
		}
	}
	if err := rt.Close(); err != nil {
		return err
	}
	<-done
	b := rt.Snapshot().Budget
	if b == nil {
		return fmt.Errorf("serving run produced no budget snapshot")
	}

	fmt.Printf("ledger: grant %.3f/stream/epoch, charge %.3f/window, policy %s, overlap %d\n",
		float64(b.Grant), float64(b.Charge), b.Policy, b.Overlap)
	fmt.Printf("ledger: %d admitted, %d denied of %d decisions across %d streams (%d answers, %d released)\n",
		b.Admitted, b.Denied, b.Admitted+b.Denied+b.Suppressed, b.Streams, answers, released)
	fmt.Printf("ledger: spent %.4f (+%.4f retired), max stream %.4f, w-event composed max %.4f\n",
		float64(b.Spent), float64(b.Retired), float64(b.MaxStreamSpent), float64(b.MaxComposed))

	fail := func(format string, args ...any) error {
		fmt.Printf("  verdict: FAIL — "+format+"\n", args...)
		return fmt.Errorf("ledger audit failed")
	}
	tol := dp.SpendTolerance(dp.Epsilon(budget)) + 1e-12
	// Internal consistency: the declared charge is the mechanism's claim,
	// spend is exactly admitted x charge, and both composition bounds hold.
	if math.Abs(float64(b.Charge)-eps) > 1e-12 {
		return fail("declared charge %.4f != mechanism eps %.4f", float64(b.Charge), eps)
	}
	if got, want := float64(b.Spent)+float64(b.Retired), float64(b.Admitted)*eps; math.Abs(got-want) > 1e-9 {
		return fail("ledger spend %.6f != admitted x charge %.6f", got, want)
	}
	if float64(b.MaxStreamSpent) > budget+tol {
		return fail("per-stream spend %.4f exceeds declared grant %.4f", float64(b.MaxStreamSpent), budget)
	}
	if bound := math.Min(budget, float64(overlap)*eps); float64(b.MaxComposed) > bound+tol {
		return fail("w-event composed loss %.4f exceeds declared bound %.4f", float64(b.MaxComposed), bound)
	}

	// Empirical per-release audit of the same mechanism: the observed
	// log-likelihood ratio must stay within the ledger's declared
	// per-window charge (plus sampling slack).
	mech, err := core.NewUniformPPM(dp.Epsilon(eps), pt)
	if err != nil {
		return err
	}
	aud := core.Auditor{Trials: trials, Seed: seed}
	results, err := aud.AuditPattern(mech, pt, map[event.Type]bool{"public": true}, float64(b.Charge))
	if err != nil {
		return err
	}
	v := core.Summarize(results, 0.1)
	fmt.Printf("empirical: per-release eps-hat %.4f over %d trials (declared charge %.4f)\n",
		v.FullPattern, trials, float64(b.Charge))
	fmt.Printf("empirical: implied w-event composed %.4f (declared %.4f)\n",
		float64(overlap)*v.FullPattern, math.Min(budget, float64(overlap)*eps))
	if !v.Pass {
		return fail("empirical eps-hat %.4f exceeds declared charge %.4f + slack", v.FullPattern, float64(b.Charge))
	}
	fmt.Println("  verdict: PASS — empirical eps-hat within the ledger's declared bound")
	return nil
}

// runRestart audits the ledger across restart boundaries. Phase 1 serves a
// budgeted run against a WAL and abandons it without Close — the moral
// equivalent of a kill: no final checkpoint, no drain, only what the
// append-before-publish path already wrote. Recovery must then satisfy the
// one-sided invariant: recovered spend >= the spend of every answer that was
// published before the kill. Phase 2 closes gracefully after a budget
// rotation and checks the exact boundary: nothing lost, epoch preserved.
func runRestart(eps float64, m int, seed int64, budget float64) error {
	if budget <= 0 {
		budget = 8 * eps
	}
	pt, err := patternType(m)
	if err != nil {
		return err
	}
	walDir, err := os.MkdirTemp("", "dpaudit-wal-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)
	const (
		streams = 4
		slide   = event.Timestamp(10)
		overlap = 2
		windows = 40
	)
	cfg := runtime.Config{
		Shards:      2,
		WindowWidth: slide * overlap,
		Slide:       slide,
		Mechanism: func(int) (core.Mechanism, error) {
			return core.NewUniformPPM(dp.Epsilon(eps), pt)
		},
		Private:      []core.PatternType{pt},
		Targets:      []cep.Query{{Name: "audit-q", Pattern: cep.E(pt.Elements[0]), Window: slide * overlap}},
		Seed:         seed,
		Budget:       dp.Epsilon(budget),
		BudgetPolicy: runtime.BudgetDeny,
		Durability:   &runtime.DurabilityConfig{Dir: walDir, Fsync: runtime.FsyncOff},
	}
	fail := func(format string, args ...any) error {
		fmt.Printf("  verdict: FAIL — "+format+"\n", args...)
		return fmt.Errorf("restart-boundary audit failed")
	}
	ledgerSpend := func(rt *runtime.Runtime) float64 {
		b := rt.Snapshot().Budget
		if b == nil {
			return 0
		}
		return float64(b.Spent) + float64(b.Retired)
	}

	// Phase 1: serve, then abandon at the kill boundary. The subscriber
	// records every published (stream, window) release; a window charged but
	// never published may over-count on recovery — that is the allowed side.
	rt1, err := runtime.New(cfg)
	if err != nil {
		return err
	}
	sub, err := rt1.Subscribe("audit-q")
	if err != nil {
		return err
	}
	type winKey struct {
		stream string
		window int
	}
	published := make(map[winKey]bool)
	var pubMu sync.Mutex
	var delivered atomic.Int64
	go func() {
		for a := range sub.C() {
			delivered.Add(1)
			if a.Suppressed {
				continue
			}
			pubMu.Lock()
			published[winKey{a.Stream, a.WindowIndex}] = true
			pubMu.Unlock()
		}
	}()
	var ingested int64
	ingest := func(rt *runtime.Runtime, from, to event.Timestamp) error {
		for s := 0; s < streams; s++ {
			key := fmt.Sprintf("audit-%d", s)
			for w := from; w < to; w++ {
				for i, el := range pt.Elements {
					e := event.New(el, w*slide+event.Timestamp(i)).WithSource(key)
					if err := rt.Ingest(e); err != nil {
						return err
					}
					ingested++
				}
			}
		}
		return nil
	}
	if err := ingest(rt1, 0, windows/2); err != nil {
		return err
	}
	// Settle: Ingest only enqueues, so wait until the shards have processed
	// every enqueued event and every emitted answer reached the subscriber —
	// then the published set reflects everything that left the runtime.
	// (Answers still unpublished at the kill only loosen the bound — the
	// safe side of the invariant.)
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(time.Millisecond) {
		tot := rt1.Snapshot().Totals()
		if tot.EventsIn == ingested && delivered.Load() >= tot.AnswersEmitted {
			break
		}
	}
	pubMu.Lock()
	publishedSpend := float64(len(published)) * eps
	pubMu.Unlock()
	// Kill: rt1 is abandoned, never closed. Every published answer's WAL
	// record was committed (direct write) strictly before its publish.

	rt2, err := runtime.New(cfg)
	if err != nil {
		return err
	}
	rec := rt2.Recovery()
	if rec == nil {
		return fail("no recovery from the killed run's WAL directory")
	}
	recovered := ledgerSpend(rt2)
	fmt.Printf("kill boundary: %d published releases (%.4f eps) before the kill\n", len(published), publishedSpend)
	fmt.Printf("recovered: %.4f eps from %d WAL records + checkpoint %d (%d streams)\n",
		recovered, rec.ReplayedRecords, rec.CheckpointID, rec.Streams)
	tol := dp.SpendTolerance(dp.Epsilon(budget)) + 1e-12
	if recovered+tol < publishedSpend {
		return fail("recovered spend %.6f under-counts published spend %.6f", recovered, publishedSpend)
	}

	// Phase 2: the graceful boundary. Rotate the budget epoch, serve the
	// rest, drain through Close (final checkpoint), and recover again: the
	// spend must carry over exactly and the rotated epoch must survive.
	ep, err := rt2.RotateBudget()
	if err != nil {
		return err
	}
	if err := ingest(rt2, windows/2, windows); err != nil {
		return err
	}
	if err := rt2.Close(); err != nil {
		return err
	}
	preClose := ledgerSpend(rt2)

	rt3, err := runtime.New(cfg)
	if err != nil {
		return err
	}
	defer rt3.Close()
	rec3 := rt3.Recovery()
	if rec3 == nil || rec3.CheckpointID == 0 {
		return fail("graceful close left no checkpoint to recover")
	}
	after := ledgerSpend(rt3)
	fmt.Printf("graceful boundary: %.4f eps before close, %.4f recovered (budget epoch %d -> %d)\n",
		preClose, after, ep, rt3.BudgetEpoch())
	if math.Abs(after-preClose) > tol {
		return fail("graceful restart changed the ledger: %.6f -> %.6f", preClose, after)
	}
	if rt3.BudgetEpoch() < ep {
		return fail("rotated budget epoch %d lost across restart (recovered %d)", ep, rt3.BudgetEpoch())
	}

	// Phase 3: the serving layer across the same boundary. A reconnecting
	// subscriber rides a drain/spill/restart cycle; its answer stream must
	// keep one continuous sequence space (no synthetic unknown-extent gap)
	// that tiles exactly-once-or-explicit-gap across the restart.
	srvCfg := server.Config{
		Auth:         server.TokenAuth(0),
		Heartbeat:    200 * time.Millisecond,
		ResumeWindow: 30 * time.Second,
		ReplayBuffer: 64,
	}
	startSrv := func(rt *runtime.Runtime) (*server.Server, *server.MemListener, chan struct{}, error) {
		c := srvCfg
		c.Runtime = rt
		s, err := server.New(c)
		if err != nil {
			return nil, nil, nil, err
		}
		l := server.NewMemListener()
		done := make(chan struct{})
		go func() {
			defer close(done)
			s.Serve(l)
		}()
		return s, l, done, nil
	}
	srvA, lA, doneA, err := startSrv(rt3)
	if err != nil {
		return err
	}
	var target atomic.Pointer[server.MemListener]
	target.Store(lA)
	client, err := server.Connect(server.ClientConfig{
		Token:          "audit",
		Dialer:         func() (net.Conn, error) { return target.Load().Dial() },
		Reconnect:      true,
		BackoffMin:     2 * time.Millisecond,
		BackoffMax:     50 * time.Millisecond,
		RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		return err
	}
	defer client.Close()
	auditSub, err := client.Subscribe("audit-q", 256)
	if err != nil {
		return err
	}

	// Collector: delivered seqs and explicit gap ranges must tile [1, max]
	// with neither overlap nor holes; a Seq-0 gap marker means the resume
	// degraded to a fresh sequence space, which phase 3 forbids.
	var (
		subMu       sync.Mutex
		subErr      error
		subDeliv    = map[uint64]bool{}
		subGapped   = map[uint64]bool{}
		subMax      uint64
		epochBreaks int
		progress    atomic.Int64
	)
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for a := range auditSub.C {
			progress.Add(1)
			subMu.Lock()
			switch {
			case a.Gap && a.Seq == 0:
				epochBreaks++
			case a.Gap:
				for q := a.GapFrom; q <= a.Seq; q++ {
					if subDeliv[q] || subGapped[q] {
						subErr = fmt.Errorf("seq %d covered twice", q)
					}
					subGapped[q] = true
				}
				subMax = max(subMax, a.Seq)
			default:
				if subDeliv[a.Seq] || subGapped[a.Seq] {
					subErr = fmt.Errorf("seq %d delivered twice", a.Seq)
				}
				subDeliv[a.Seq] = true
				subMax = max(subMax, a.Seq)
			}
			subMu.Unlock()
		}
	}()
	clientIngest := func(from, to event.Timestamp) error {
		for w := from; w < to; w++ {
			evs := make([]event.Event, 0, len(pt.Elements))
			for i, el := range pt.Elements {
				evs = append(evs, event.New(el, w*slide+event.Timestamp(i)).WithSource("audit-live"))
			}
			var ierr error
			for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(10 * time.Millisecond) {
				if _, ierr = client.Ingest(evs); ierr == nil {
					break
				}
			}
			if ierr != nil {
				return fmt.Errorf("ingest window %d: %w", w, ierr)
			}
		}
		return nil
	}
	const liveWindows = 8
	if err := clientIngest(0, liveWindows); err != nil {
		return err
	}

	// The restart: drain preserving session cores, spill them beside the
	// WAL, close gracefully, recover a successor, adopt the spill, and swing
	// the client's dialer over.
	dctx, dcancel := context.WithTimeout(context.Background(), 15*time.Second)
	srvA.DrainForHandoff()
	closeErr := rt3.CloseContext(dctx)
	waitErr := srvA.Wait(dctx)
	dcancel()
	if closeErr != nil || waitErr != nil {
		return fmt.Errorf("phase-3 drain: close %v wait %v", closeErr, waitErr)
	}
	subMu.Lock()
	boundarySeq := subMax
	subMu.Unlock()
	spill := srvA.ExportSessions()
	if err := durable.WriteSessions(walDir, spill); err != nil {
		return err
	}
	srvA.Close()
	<-doneA

	rt4, err := runtime.New(cfg)
	if err != nil {
		return err
	}
	defer rt4.Close()
	srvB, lB, doneB, err := startSrv(rt4)
	if err != nil {
		return err
	}
	defer func() {
		srvB.Close()
		<-doneB
	}()
	sp2, err := durable.ReadSessions(walDir)
	if err != nil {
		return err
	}
	adopted := 0
	if sp2 != nil {
		if adopted, err = srvB.ImportSessions(sp2); err != nil {
			return err
		}
		if err := durable.RemoveSessions(walDir); err != nil {
			return err
		}
	}
	target.Store(lB)
	if err := clientIngest(liveWindows, 2*liveWindows); err != nil {
		return err
	}

	// Quiesce, then judge the stream.
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		p := progress.Load()
		time.Sleep(300 * time.Millisecond)
		if progress.Load() == p && p > 0 {
			break
		}
	}
	client.Close()
	<-collectorDone

	subMu.Lock()
	defer subMu.Unlock()
	fmt.Printf("subscription boundary: seq space [1..%d] across restart (%d delivered, %d gapped, boundary at seq %d, %d sessions adopted, %d reconnects)\n",
		subMax, len(subDeliv), len(subGapped), boundarySeq, adopted, client.Reconnects())
	if subErr != nil {
		return fail("subscription stream violated exactly-once: %v", subErr)
	}
	if adopted == 0 {
		return fail("restart adopted no spilled sessions — resume had nothing to land on")
	}
	if epochBreaks != 0 {
		return fail("restart broke the subscription sequence space %d time(s): resume degraded to a fresh epoch", epochBreaks)
	}
	if subMax <= boundarySeq {
		return fail("no answers delivered after the restart (max seq %d, boundary %d)", subMax, boundarySeq)
	}
	for q := uint64(1); q <= subMax; q++ {
		if !subDeliv[q] && !subGapped[q] {
			return fail("seq %d lost silently across the restart (max %d)", q, subMax)
		}
	}
	fmt.Println("  verdict: PASS — recovered spend covers published spend and the subscription seq space tiles across the restart")
	return nil
}
