package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of exponential buckets in a Histogram. Bucket i
// holds observations whose duration in nanoseconds needs exactly i bits to
// represent, i.e. durations in [2^(i-1), 2^i). Bucket 0 holds zero (and
// negative, clamped) durations. 64 buckets cover the full int64 nanosecond
// range — from 1 ns to ~292 years — so no observation is ever out of range.
const histBuckets = 64

// Histogram is a lock-free latency histogram with power-of-two nanosecond
// buckets. The zero value is ready to use. Observe is safe for concurrent
// use from any number of goroutines and performs no allocation; all methods
// are safe on a nil receiver (no-ops / zero snapshots), so instrumented code
// never needs a nil check on the fast path.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // total nanoseconds
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps a non-negative nanosecond duration to its bucket.
func bucketIndex(ns int64) int {
	// bits.Len64 of a non-negative int64 is at most 63, so the index is
	// always in [0, 63].
	return bits.Len64(uint64(ns))
}

// BucketUpper returns the inclusive upper bound of bucket i as a duration:
// 2^i − 1 nanoseconds. The last bucket's bound saturates at the maximum
// representable duration.
func BucketUpper(i int) time.Duration {
	if i >= 63 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(int64(1)<<uint(i) - 1)
}

// Observe records one duration. Negative durations (possible under clock
// steps) are clamped to zero rather than dropped so Count stays consistent
// with the number of measured operations.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketIndex(ns)].Add(1)
}

// ObserveSince is shorthand for Observe(time.Since(start)).
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start))
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot captures a point-in-time copy of the histogram. Loads are not
// atomic across buckets — a snapshot taken during concurrent Observes may be
// torn by a few in-flight observations — which is the standard monitoring
// trade-off; totals are reconciled so Count always equals the bucket sum.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	var total int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		total += n
	}
	s.Count = total
	s.Sum = time.Duration(h.sum.Load())
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram's state. Snapshots
// from different histograms (e.g. per-shard) merge associatively, so
// aggregation order never changes the result.
type HistogramSnapshot struct {
	// Count is the total number of observations.
	Count int64
	// Sum is the sum of all observed durations.
	Sum time.Duration
	// Buckets[i] counts observations in bucket i (see BucketUpper).
	Buckets [histBuckets]int64
}

// Merge folds o into s, returning the combined snapshot.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	return s
}

// Mean returns the average observed duration, or 0 with no observations.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Max returns the upper bound of the highest non-empty bucket — a tight
// (within 2x) bound on the largest observation. It returns 0 when empty.
func (s HistogramSnapshot) Max() time.Duration {
	for i := histBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return BucketUpper(i)
		}
	}
	return 0
}

// Quantile estimates the q-th quantile (q in [0, 1]) by linear interpolation
// inside the bucket containing the target rank. It returns 0 when the
// histogram is empty; q outside [0, 1] is clamped.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= rank {
			lo := int64(0)
			if i > 0 {
				lo = int64(1) << uint(i-1)
			}
			hi := int64(BucketUpper(i))
			frac := 0.0
			if n > 0 {
				frac = (rank - cum) / float64(n)
			}
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum = next
	}
	return s.Max()
}
