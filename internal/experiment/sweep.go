package experiment

import (
	"fmt"
	"math/rand"
	"sort"

	"patterndp/internal/core"
	"patterndp/internal/dp"
	"patterndp/internal/metrics"
)

// Result is one measured cell of an experiment: a mechanism at a budget on a
// bench, summarized over repetitions.
type Result struct {
	// Bench names the dataset context.
	Bench string
	// Mechanism names the mechanism spec.
	Mechanism MechanismSpec
	// Epsilon is the pattern-level budget.
	Epsilon dp.Epsilon
	// MRE summarizes the quality loss (Equation 4) across repetitions.
	MRE metrics.Summary
	// Quality summarizes the released data quality Q across repetitions.
	Quality metrics.Summary
}

// SweepConfig parameterizes RunSweep.
type SweepConfig struct {
	// Epsilons is the budget sweep (Fig. 4's x axis).
	Epsilons []dp.Epsilon
	// Specs are the mechanisms to compare.
	Specs []MechanismSpec
	// Reps is the number of repetitions per cell (different noise draws).
	Reps int
	// Seed derives all per-repetition seeds.
	Seed int64
	// Adaptive configures the adaptive PPM fits (Epsilon/Alpha overridden).
	Adaptive core.AdaptiveConfig
}

// Validate reports configuration errors.
func (c SweepConfig) Validate() error {
	if len(c.Epsilons) == 0 {
		return fmt.Errorf("experiment: no epsilons")
	}
	for _, e := range c.Epsilons {
		if !e.Valid() {
			return fmt.Errorf("experiment: invalid epsilon %v", e)
		}
	}
	if len(c.Specs) == 0 {
		return fmt.Errorf("experiment: no mechanism specs")
	}
	if c.Reps <= 0 {
		return fmt.Errorf("experiment: reps = %d", c.Reps)
	}
	return nil
}

// RunSweep measures every (mechanism, ε) cell on the bench: for each
// repetition the mechanism releases the evaluation windows, quality is
// measured against ground truth, and MRE is computed against the
// no-PPM quality Qord (which is 1 by construction for binary detection from
// true indicators, but is measured rather than assumed).
func RunSweep(b *Bench, cfg SweepConfig) ([]Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Reference quality without any PPM.
	identity := core.Identity{}
	refRelease := identity.Run(nil, b.Eval)
	qOrd, _ := core.MeasuredQuality(b.Eval, refRelease, b.Targets, b.Alpha)
	if qOrd <= 0 {
		return nil, fmt.Errorf("experiment: ordinary quality %v is not positive", qOrd)
	}

	var results []Result
	for _, spec := range cfg.Specs {
		for _, eps := range cfg.Epsilons {
			mech, err := b.BuildMechanism(spec, eps, cfg.Adaptive)
			if err != nil {
				return nil, fmt.Errorf("experiment: building %s at eps=%v: %w", spec, eps, err)
			}
			var mres, quals []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				rng := rand.New(rand.NewSource(repSeed(cfg.Seed, string(spec), float64(eps), rep)))
				released := mech.Run(rng, b.Eval)
				q, _ := core.MeasuredQuality(b.Eval, released, b.Targets, b.Alpha)
				mre, err := metrics.MRE(qOrd, q)
				if err != nil {
					return nil, err
				}
				mres = append(mres, mre)
				quals = append(quals, q)
			}
			results = append(results, Result{
				Bench:     b.Name,
				Mechanism: spec,
				Epsilon:   eps,
				MRE:       metrics.Summarize(mres),
				Quality:   metrics.Summarize(quals),
			})
		}
	}
	return results, nil
}

// repSeed derives a deterministic per-cell seed.
func repSeed(base int64, spec string, eps float64, rep int) int64 {
	h := base
	for _, c := range spec {
		h = h*131 + int64(c)
	}
	h = h*131 + int64(eps*1e6)
	h = h*131 + int64(rep)
	return h
}

// MergeResults averages results from repeated benches (e.g. many synthetic
// datasets): cells with the same (mechanism, ε) are pooled by their means.
// The Bench label of the first occurrence is kept.
func MergeResults(groups ...[]Result) []Result {
	type key struct {
		spec MechanismSpec
		eps  dp.Epsilon
	}
	order := []key{}
	pool := map[key][]Result{}
	for _, rs := range groups {
		for _, r := range rs {
			k := key{r.Mechanism, r.Epsilon}
			if _, ok := pool[k]; !ok {
				order = append(order, k)
			}
			pool[k] = append(pool[k], r)
		}
	}
	out := make([]Result, 0, len(order))
	for _, k := range order {
		rs := pool[k]
		mres := make([]float64, len(rs))
		quals := make([]float64, len(rs))
		for i, r := range rs {
			mres[i] = r.MRE.Mean
			quals[i] = r.Quality.Mean
		}
		out = append(out, Result{
			Bench:     rs[0].Bench,
			Mechanism: k.spec,
			Epsilon:   k.eps,
			MRE:       metrics.Summarize(mres),
			Quality:   metrics.Summarize(quals),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Mechanism != out[j].Mechanism {
			return out[i].Mechanism < out[j].Mechanism
		}
		return out[i].Epsilon < out[j].Epsilon
	})
	return out
}
