package runtime

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"patterndp/internal/cep"
	"patterndp/internal/core"
	"patterndp/internal/dp"
	"patterndp/internal/event"
)

func testConfig(t *testing.T, shards int) Config {
	t.Helper()
	pt, err := core.NewPatternType("priv", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Shards:      shards,
		WindowWidth: 10,
		// Huge budget: perturbation is negligible, so released answers
		// must match ground truth and assertions stay deterministic.
		Mechanism: func(int) (core.Mechanism, error) {
			return core.NewUniformPPM(50, pt)
		},
		Private: []core.PatternType{pt},
		Targets: []cep.Query{
			{Name: "has-a", Pattern: cep.E("a"), Window: 10},
			{Name: "seq-ab", Pattern: cep.SeqTypes("a", "b"), Window: 10},
		},
		Seed: 7,
	}
}

// streamEvents builds one stream's events: an "a" in every window and a "b"
// in every even window, over the given number of windows.
func streamEvents(key string, windows int) []event.Event {
	var out []event.Event
	for w := 0; w < windows; w++ {
		base := event.Timestamp(w * 10)
		out = append(out, event.New("a", base+1).WithSource(key))
		if w%2 == 0 {
			out = append(out, event.New("b", base+5).WithSource(key))
		}
	}
	return out
}

// TestRuntimeMultiStreamOrdering is the acceptance scenario: >= 4 shards
// serving >= 4 concurrent streams under -race, with per-query answers
// arriving in window order per stream and matching ground truth.
func TestRuntimeMultiStreamOrdering(t *testing.T) {
	const streams, windows = 6, 20
	rt, err := New(testConfig(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rt.Subscribe("seq-ab")
	if err != nil {
		t.Fatal(err)
	}
	var got []Answer
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for a := range sub.C() {
			got = append(got, a)
		}
	}()

	var producers sync.WaitGroup
	for i := 0; i < streams; i++ {
		producers.Add(1)
		go func(i int) {
			defer producers.Done()
			for _, e := range streamEvents(fmt.Sprintf("stream-%d", i), windows) {
				if err := rt.Ingest(e); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	producers.Wait()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	consumer.Wait()

	if len(got) != streams*windows {
		t.Fatalf("answers = %d, want %d", len(got), streams*windows)
	}
	next := make(map[string]int)
	for _, a := range got {
		if a.Query != "seq-ab" {
			t.Fatalf("subscription leaked query %q", a.Query)
		}
		if a.WindowIndex != next[a.Stream] {
			t.Fatalf("stream %s answer out of order: window %d, want %d", a.Stream, a.WindowIndex, next[a.Stream])
		}
		next[a.Stream]++
		if want := a.WindowIndex%2 == 0; a.Detected != want {
			t.Errorf("stream %s window %d detected=%t, want %t", a.Stream, a.WindowIndex, a.Detected, want)
		}
	}
	st := rt.Snapshot()
	tot := st.Totals()
	if want := int64(streams * (windows + windows/2)); tot.EventsIn != want {
		t.Errorf("EventsIn = %d, want %d", tot.EventsIn, want)
	}
	if want := int64(streams * windows); tot.WindowsClosed != want {
		t.Errorf("WindowsClosed = %d, want %d", tot.WindowsClosed, want)
	}
	// Two queries per window.
	if want := int64(2 * streams * windows); tot.AnswersEmitted != want {
		t.Errorf("AnswersEmitted = %d, want %d", tot.AnswersEmitted, want)
	}
	if tot.Streams != streams {
		t.Errorf("Streams = %d, want %d", tot.Streams, streams)
	}
	if b := st.Balance(); b.N != 4 {
		t.Errorf("Balance over %d shards, want 4", b.N)
	}
}

// TestRuntimeStreamAffinity verifies all of one stream's windows are served
// by a single shard (the precondition for per-stream order).
func TestRuntimeStreamAffinity(t *testing.T) {
	rt, err := New(testConfig(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rt.Subscribe("")
	if err != nil {
		t.Fatal(err)
	}
	shardOf := make(map[string]map[int]bool)
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for a := range sub.C() {
			if shardOf[a.Stream] == nil {
				shardOf[a.Stream] = make(map[int]bool)
			}
			shardOf[a.Stream][a.Shard] = true
		}
	}()
	for i := 0; i < 16; i++ {
		for _, e := range streamEvents(fmt.Sprintf("s%d", i), 4) {
			if err := rt.Ingest(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	consumer.Wait()
	if len(shardOf) != 16 {
		t.Fatalf("streams seen = %d, want 16", len(shardOf))
	}
	for key, shards := range shardOf {
		if len(shards) != 1 {
			t.Errorf("stream %s served by %d shards", key, len(shards))
		}
	}
}

// TestRuntimeDropLateCounted feeds a straggler past its window and checks the
// dropped-late counter.
func TestRuntimeDropLateCounted(t *testing.T) {
	rt, err := New(testConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rt.Subscribe("")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range sub.C() {
		}
	}()
	for _, e := range []event.Event{
		event.New("a", 1), event.New("a", 15), event.New("b", 2), // b@2 is late
	} {
		if err := rt.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	tot := rt.Snapshot().Totals()
	if tot.DroppedLate != 1 {
		t.Errorf("DroppedLate = %d, want 1", tot.DroppedLate)
	}
	if tot.EventsIn != 3 {
		t.Errorf("EventsIn = %d, want 3", tot.EventsIn)
	}
}

// TestRuntimeDropOldestBackpressure fills a tiny ingest buffer with serving
// stalled behind an unconsumed subscription, then checks evictions happened
// instead of blocking.
func TestRuntimeDropOldestBackpressure(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.Backpressure = DropOldest
	cfg.ShardBuffer = 4
	cfg.SubscriberBuffer = 0
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A subscriber that consumes only after Close lets answers stall the
	// shard, so the ingest channel must overflow and evict.
	sub, err := rt.Subscribe("")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := rt.Ingest(event.New("a", event.Timestamp(i))); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sub.C() {
		}
	}()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	tot := rt.Snapshot().Totals()
	if tot.DroppedIngest == 0 {
		t.Error("DroppedIngest = 0, want evictions under a full ingest channel")
	}
	if tot.EventsIn+tot.DroppedIngest != 64 {
		t.Errorf("EventsIn %d + DroppedIngest %d != 64", tot.EventsIn, tot.DroppedIngest)
	}
}

// TestRuntimeClosedSemantics checks Ingest, Close, Subscribe, and control
// ops after Close, and that subscriptions close with a nil Err.
func TestRuntimeClosedSemantics(t *testing.T) {
	rt, err := New(testConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rt.Subscribe("has-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, open := <-sub.C(); open {
		t.Error("subscription still open after Close")
	}
	if err := sub.Err(); err != nil {
		t.Errorf("Err after runtime Close = %v, want nil (normal end of stream)", err)
	}
	if err := rt.Ingest(event.New("a", 1)); err != ErrClosed {
		t.Errorf("Ingest after Close = %v, want ErrClosed", err)
	}
	if err := rt.Close(); err != ErrClosed {
		t.Errorf("second Close = %v, want ErrClosed", err)
	}
	if _, err := rt.Subscribe("has-a"); err != ErrClosed {
		t.Errorf("Subscribe after Close = %v, want ErrClosed", err)
	}
	if _, err := rt.RegisterQuery(cep.Query{Name: "q", Pattern: cep.E("a"), Window: 10}); err != ErrClosed {
		t.Errorf("RegisterQuery after Close = %v, want ErrClosed", err)
	}
	// Deprecated SubscribeChan keeps the old closed-channel semantics.
	if _, open := <-rt.SubscribeChan("has-a"); open {
		t.Error("SubscribeChan after Close returned an open channel")
	}
}

// TestRuntimeRegisterQueryLive adds a query mid-serve and checks it starts
// answering on later windows, with answers stamped by its epoch.
func TestRuntimeRegisterQueryLive(t *testing.T) {
	rt, err := New(testConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	ep, err := rt.RegisterQuery(cep.Query{Name: "late-q", Pattern: cep.E("b"), Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	if ep != 1 {
		t.Errorf("first registration epoch = %d, want 1", ep)
	}
	sub, err := rt.Subscribe("late-q")
	if err != nil {
		t.Fatal(err)
	}
	var n int
	var badEpoch bool
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for a := range sub.C() {
			n++
			if a.Epoch < ep {
				badEpoch = true
			}
		}
	}()
	for _, e := range streamEvents("s", 5) {
		if err := rt.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	consumer.Wait()
	if n != 5 {
		t.Errorf("late-q answers = %d, want 5", n)
	}
	if badEpoch {
		t.Errorf("answer released under an epoch before the query existed")
	}
}

// TestRuntimeSubscribeUnknownQuery is the regression test for subscriptions
// to nonexistent queries: they must fail instead of returning a channel that
// can never receive.
func TestRuntimeSubscribeUnknownQuery(t *testing.T) {
	rt, err := New(testConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := rt.Subscribe("no-such-query"); !errors.Is(err, ErrUnknownQuery) {
		t.Fatalf("Subscribe(unknown) = %v, want ErrUnknownQuery", err)
	}
	if _, err := rt.Subscribe(""); err != nil {
		t.Fatalf("Subscribe(all) = %v, want nil", err)
	}
	if _, err := rt.Subscribe("has-a"); err != nil {
		t.Fatalf("Subscribe(known) = %v, want nil", err)
	}
}

// TestRuntimeSubscriptionCancel is the regression test for the subscriber
// leak: Cancel must remove the subscription from the bus, close the channel
// exactly once (idempotently, also under a concurrent publish), and report
// ErrSubscriptionCancelled.
func TestRuntimeSubscriptionCancel(t *testing.T) {
	rt, err := New(testConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rt.Subscribe("has-a")
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.bus.subscribers("has-a"); got != 1 {
		t.Fatalf("subscribers = %d, want 1", got)
	}
	// Cancel concurrently with live publishing: deliveries racing the
	// cancel must be either buffered or discarded, never a panic.
	var producers sync.WaitGroup
	for i := 0; i < 4; i++ {
		producers.Add(1)
		go func(i int) {
			defer producers.Done()
			for _, e := range streamEvents(fmt.Sprintf("s%d", i), 10) {
				if err := rt.Ingest(e); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	var cancels sync.WaitGroup
	for i := 0; i < 2; i++ { // concurrent double-cancel must be safe
		cancels.Add(1)
		go func() {
			defer cancels.Done()
			sub.Cancel()
		}()
	}
	cancels.Wait()
	producers.Wait()
	if got := rt.bus.subscribers("has-a"); got != 0 {
		t.Errorf("subscribers after Cancel = %d, want 0 (leaked)", got)
	}
	// The channel must close once buffered answers are drained.
	for range sub.C() {
	}
	if !errors.Is(sub.Err(), ErrSubscriptionCancelled) {
		t.Errorf("Err after Cancel = %v, want ErrSubscriptionCancelled", sub.Err())
	}
	sub.Cancel() // idempotent after close
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRuntimeControlChurnRace is the acceptance test for the dynamic control
// plane: concurrent Ingest with RegisterQuery/UnregisterQuery and
// RegisterPrivate/UnregisterPrivate churn across 4 shards under -race, with
// every released answer's epoch naming a query set that actually contained
// its query.
func TestRuntimeControlChurnRace(t *testing.T) {
	cfg := testConfig(t, 4)
	cfg.Mechanism = nil
	cfg.MechanismFor = func(_ int, private []core.PatternType) (core.Mechanism, error) {
		return core.NewUniformPPM(50, private...)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rt.Subscribe("")
	if err != nil {
		t.Fatal(err)
	}

	// history records, per epoch, the query set in force after that
	// epoch's change. Epoch 0 is the construction state.
	var historyMu sync.Mutex
	history := map[Epoch]map[string]bool{0: {"has-a": true, "seq-ab": true}}
	record := func(ep Epoch, queries []cep.Query) {
		set := make(map[string]bool, len(queries))
		for _, q := range queries {
			set[q.Name] = true
		}
		historyMu.Lock()
		history[ep] = set
		historyMu.Unlock()
	}

	var got []Answer
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for a := range sub.C() {
			got = append(got, a)
		}
	}()

	const streams, windows = 8, 40
	var producers sync.WaitGroup
	for i := 0; i < streams; i++ {
		producers.Add(1)
		go func(i int) {
			defer producers.Done()
			for _, e := range streamEvents(fmt.Sprintf("stream-%d", i), windows) {
				if err := rt.Ingest(e); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}

	// Control-plane churn concurrent with the producers: queries come and
	// go, and a private pattern type is registered and retired repeatedly
	// (forcing mechanism rebuilds).
	var controller sync.WaitGroup
	controller.Add(1)
	go func() {
		defer controller.Done()
		churnQ := cep.Query{Name: "churn-q", Pattern: cep.E("b"), Window: 10}
		churnPT, err := core.NewPatternType("churn-priv", "b")
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 20; i++ {
			ep, err := rt.RegisterQuery(churnQ)
			if err != nil {
				t.Error(err)
				return
			}
			record(ep, rt.Queries())
			if ep, err = rt.RegisterPrivate(churnPT); err != nil {
				t.Error(err)
				return
			}
			record(ep, rt.Queries())
			if ep, err = rt.UnregisterQuery(churnQ); err != nil {
				t.Error(err)
				return
			}
			record(ep, rt.Queries())
			if ep, err = rt.UnregisterPrivate(churnPT); err != nil {
				t.Error(err)
				return
			}
			record(ep, rt.Queries())
		}
	}()
	controller.Wait()

	// After the churn settles, a final registration must be answered for
	// all windows served after it: the ingests below happen after
	// RegisterQuery returned, so their windows close under epoch >= final.
	finalEp, err := rt.RegisterQuery(cep.Query{Name: "final-q", Pattern: cep.E("a"), Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	record(finalEp, rt.Queries())
	producers.Wait()
	for _, e := range streamEvents("post-churn", 3) {
		if err := rt.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	consumer.Wait()

	finals := 0
	for _, a := range got {
		set, ok := history[a.Epoch]
		if !ok {
			t.Fatalf("answer for %q stamped with unknown epoch %d", a.Query, a.Epoch)
		}
		if !set[a.Query] {
			t.Fatalf("answer for %q released under epoch %d whose query set %v does not contain it",
				a.Query, a.Epoch, set)
		}
		if a.Stream == "post-churn" {
			if a.Epoch < finalEp {
				t.Fatalf("post-churn answer served under epoch %d < registration epoch %d", a.Epoch, finalEp)
			}
			if a.Query == "final-q" {
				finals++
			}
		}
	}
	if finals != 3 {
		t.Errorf("final-q answers on post-churn stream = %d, want 3", finals)
	}
	if got := rt.Snapshot().Epoch; got != finalEp {
		t.Errorf("Snapshot epoch = %d, want %d", got, finalEp)
	}
}

// TestRuntimeUnregisterLastQuery drains the query set to zero and back:
// windows closed with no query registered are cut but answer nothing, and
// serving resumes when a query returns.
func TestRuntimeUnregisterLastQuery(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.Targets = cfg.Targets[:1] // only has-a
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rt.Subscribe("")
	if err != nil {
		t.Fatal(err)
	}
	var got []Answer
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for a := range sub.C() {
			got = append(got, a)
		}
	}()
	if _, err := rt.UnregisterQuery(cep.Query{Name: "has-a"}); err != nil {
		t.Fatal(err)
	}
	for _, e := range streamEvents("s", 3) {
		if err := rt.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.UnregisterQuery(cep.Query{Name: "has-a"}); !errors.Is(err, ErrUnknownQuery) {
		t.Fatalf("double unregister = %v, want ErrUnknownQuery", err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	consumer.Wait()
	if len(got) != 0 {
		t.Errorf("answers with no query registered = %d, want 0", len(got))
	}
	if tot := rt.Snapshot().Totals(); tot.WindowsClosed != 3 {
		t.Errorf("WindowsClosed = %d, want 3 (windows still cut)", tot.WindowsClosed)
	}
}

// TestRuntimePrivateControl checks the private-set control surface:
// RegisterPrivate requires MechanismFor, the last private type cannot be
// unregistered, and unknown names error.
func TestRuntimePrivateControl(t *testing.T) {
	rt, err := New(testConfig(t, 1)) // static Mechanism factory
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	pt, err := core.NewPatternType("extra", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.RegisterPrivate(pt); !errors.Is(err, ErrStaticMechanism) {
		t.Errorf("RegisterPrivate with static factory = %v, want ErrStaticMechanism", err)
	}
	if _, err := rt.UnregisterPrivate(pt); !errors.Is(err, ErrUnknownPrivate) {
		t.Errorf("UnregisterPrivate(unknown) = %v, want ErrUnknownPrivate", err)
	}
	if _, err := rt.UnregisterPrivate(core.PatternType{Name: "priv"}); !errors.Is(err, ErrLastPrivate) {
		t.Errorf("UnregisterPrivate(last) = %v, want ErrLastPrivate", err)
	}
	if got := len(rt.PrivateTypes()); got != 1 {
		t.Errorf("PrivateTypes = %d, want 1", got)
	}
	if got := rt.Epoch(); got != 0 {
		t.Errorf("failed mutations consumed epochs: Epoch = %d, want 0", got)
	}
}

// TestRuntimeIngestContextCancel wedges a shard behind an undrained
// subscription (its buffer — the 64-slot default — fills, publish blocks,
// then the 1-slot ingest channel fills), then checks a blocked IngestContext
// returns the context error — and that cancelling the subscription unwedges
// serving so Close completes.
func TestRuntimeIngestContextCancel(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.ShardBuffer = 1
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rt.Subscribe("") // never drained: publishing blocks serving
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		// Enough events to close windows and wedge: publish blocks, the
		// shard channel fills, and some IngestContext call blocks.
		for i := 0; ; i++ {
			if err := rt.IngestContext(ctx, event.New("a", event.Timestamp(i*10))); err != nil {
				errc <- err
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the producer wedge
	// Status reads must not block behind the backpressured delivery the
	// shard is stuck in.
	errDone := make(chan error, 1)
	go func() { errDone <- sub.Err() }()
	select {
	case e := <-errDone:
		if e != nil {
			t.Errorf("Err on a live subscription = %v, want nil", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Err blocked behind a backpressured delivery")
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("IngestContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("IngestContext still blocked after cancel")
	}
	// Cancelling the stuck subscription releases the blocked publish, so
	// the runtime can drain and close.
	sub.Cancel()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRuntimeCloseContext checks the bounded close: with serving wedged
// behind an undrained subscription, CloseContext returns the context error
// while the drain continues in the background and completes once the
// subscription is cancelled.
func TestRuntimeCloseContext(t *testing.T) {
	rt, err := New(testConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rt.Subscribe("")
	if err != nil {
		t.Fatal(err)
	}
	// Enough windows that the undrained subscription buffer (default 64)
	// fills and publishing wedges the drain.
	for _, e := range streamEvents("s", 60) {
		if err := rt.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := rt.CloseContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CloseContext = %v, want context.DeadlineExceeded", err)
	}
	if err := rt.Close(); err != ErrClosed {
		t.Fatalf("Close after CloseContext = %v, want ErrClosed", err)
	}
	if err := rt.Err(); err != nil {
		t.Errorf("Err before the drain completed = %v, want nil", err)
	}
	sub.Cancel()
	select {
	case <-rt.Done(): // background drain finished
	case <-time.After(5 * time.Second):
		t.Fatal("drain never completed after subscription cancel")
	}
	if err := rt.Err(); err != nil {
		t.Errorf("drain finished with error %v", err)
	}
}

// TestRuntimeCloseContextWedgedProducer pins the bounded-wait contract under
// the worst wedge: a producer blocked inside Ingest holds the runtime lock,
// so the close sequence cannot even mark the runtime closed — CloseContext
// must still return when its context does.
func TestRuntimeCloseContextWedgedProducer(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.ShardBuffer = 1
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rt.Subscribe("") // never drained
	if err != nil {
		t.Fatal(err)
	}
	wedged := make(chan struct{})
	go func() {
		defer close(wedged)
		// Blocks once the subscriber buffer and the ingest channel fill;
		// unwedged below by the subscription cancel.
		for i := 0; i < 200; i++ {
			if rt.Ingest(event.New("a", event.Timestamp(i*10))) != nil {
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the producer wedge
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := rt.CloseContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CloseContext under a wedged producer = %v, want context.DeadlineExceeded", err)
	}
	sub.Cancel()
	<-wedged
	select {
	case <-rt.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("drain never completed after unwedging")
	}
}

// TestRuntimeDuplicateConfigNames is the regression test for duplicate names
// in Config.Targets: they must collapse to one registration (last wins), so
// a later UnregisterQuery cannot strand a stale duplicate that would fail
// the shards' epoch apply.
func TestRuntimeDuplicateConfigNames(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Targets = append(cfg.Targets, cep.Query{Name: "has-a", Pattern: cep.E("a"), Window: 10})
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rt.Queries()); got != 2 {
		t.Fatalf("Queries = %d, want 2 (duplicate collapsed)", got)
	}
	if _, err := rt.UnregisterQuery(cep.Query{Name: "has-a"}); err != nil {
		t.Fatal(err)
	}
	sub, err := rt.Subscribe("")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range sub.C() {
		}
	}()
	// Serving windows past the unregister exercises each shard's epoch
	// apply; a stale duplicate would kill the shards here.
	for _, e := range streamEvents("s", 5) {
		if err := rt.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if tot := rt.Snapshot().Totals(); tot.Failed {
		t.Error("shards failed after unregistering a config-duplicated query")
	}
}

// TestRuntimeDeterministicPerStream pins cross-run determinism: identical
// seeds and a single producer per stream must yield identical per-stream
// answer sequences regardless of shard count.
func TestRuntimeDeterministicPerStream(t *testing.T) {
	run := func(shards int) map[string][]bool {
		cfg := testConfig(t, shards)
		cfg.Mechanism = func(int) (core.Mechanism, error) {
			pt := cfg.Private[0]
			return core.NewUniformPPM(1, pt) // low budget: real perturbation
		}
		rt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := rt.Subscribe("has-a")
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string][]bool)
		var consumer sync.WaitGroup
		consumer.Add(1)
		go func() {
			defer consumer.Done()
			for a := range sub.C() {
				out[a.Stream] = append(out[a.Stream], a.Detected)
			}
		}()
		// One stream only: its shard (hence seed) is stable for a fixed
		// shard count.
		for _, e := range streamEvents("solo", 30) {
			if err := rt.Ingest(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		consumer.Wait()
		return out
	}
	a, b := run(4), run(4)
	if len(a["solo"]) != 30 || len(b["solo"]) != 30 {
		t.Fatalf("answer counts = %d, %d, want 30", len(a["solo"]), len(b["solo"]))
	}
	for i := range a["solo"] {
		if a["solo"][i] != b["solo"][i] {
			t.Fatalf("window %d diverges between identically seeded runs", i)
		}
	}
}

// failingMechanism misbehaves (wrong window count) after a number of calls,
// standing in for a buggy custom Mechanism in production.
type failingMechanism struct{ calls, after int }

func (m *failingMechanism) Name() string             { return "failing" }
func (m *failingMechanism) TotalEpsilon() dp.Epsilon { return 1 }
func (m *failingMechanism) Run(rng *rand.Rand, wins []core.IndicatorWindow) []map[event.Type]bool {
	m.calls++
	if m.calls > m.after {
		return nil // wrong length: the engine must reject this
	}
	return core.Identity{}.Run(rng, wins)
}

// TestRuntimeShardFailureSurfaces is the regression test for silent shard
// death: after an engine error the failure must show up in Ingest (not just
// at Close), in the snapshot, and in Close's returned error.
func TestRuntimeShardFailureSurfaces(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.Mechanism = func(int) (core.Mechanism, error) {
		return &failingMechanism{after: 1}, nil
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rt.Subscribe("")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range sub.C() {
		}
	}()
	// Window 0 serves fine; window 1 triggers the failure. Keep ingesting
	// until the failure propagates to Ingest.
	var ingestErr error
	for i := 0; i < 100000 && ingestErr == nil; i++ {
		ingestErr = rt.Ingest(event.New("a", event.Timestamp(i)))
	}
	if !errors.Is(ingestErr, ErrShardFailed) {
		t.Fatalf("Ingest after shard failure = %v, want ErrShardFailed", ingestErr)
	}
	tot := rt.Snapshot().Totals()
	if !tot.Failed {
		t.Error("Snapshot does not report the failed shard")
	}
	if err := rt.Close(); err == nil || errors.Is(err, ErrClosed) {
		t.Errorf("Close = %v, want the underlying engine error", err)
	}
}

// TestRuntimeIdleStreamEviction is the regression test for unbounded
// per-stream state under key churn: with EvictAfter set, an idle stream's
// trailing window must be flushed and answered before Close, its state
// freed, and a returning event must start a fresh feed.
func TestRuntimeIdleStreamEviction(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.EvictAfter = 8
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rt.Subscribe("has-a")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	byStream := make(map[string]int)
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for a := range sub.C() {
			mu.Lock()
			byStream[a.Stream]++
			mu.Unlock()
		}
	}()
	// One event on the idle stream, then enough traffic on another stream
	// to trigger a sweep that evicts it.
	if err := rt.Ingest(event.New("a", 1).WithSource("idle")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := rt.Ingest(event.New("a", event.Timestamp(i)).WithSource("busy")); err != nil {
			t.Fatal(err)
		}
	}
	// The idle stream's trailing window must be answered without Close.
	deadline := 0
	for {
		mu.Lock()
		n := byStream["idle"]
		mu.Unlock()
		if n > 0 {
			break
		}
		if deadline++; deadline > 2000 {
			t.Fatal("idle stream's trailing window never flushed by eviction")
		}
		time.Sleep(time.Millisecond) // let the shard goroutine serve
		// Keep the busy stream moving so sweeps keep firing.
		if err := rt.Ingest(event.New("a", 500).WithSource("busy")); err != nil {
			t.Fatal(err)
		}
	}
	// A returning event starts a fresh feed (not dropped as late).
	if err := rt.Ingest(event.New("a", 2).WithSource("idle")); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	consumer.Wait()
	tot := rt.Snapshot().Totals()
	if tot.StreamsEvicted == 0 {
		t.Error("StreamsEvicted = 0, want at least 1")
	}
	if tot.Streams < 3 {
		t.Errorf("Streams = %d, want >= 3 (idle opened twice)", tot.Streams)
	}
	if tot.DroppedLate != 0 {
		t.Errorf("DroppedLate = %d: returning stream treated as late", tot.DroppedLate)
	}
	if byStream["idle"] < 2 {
		t.Errorf("idle stream answers = %d, want >= 2 (evicted flush + fresh feed)", byStream["idle"])
	}
}

func TestRuntimeConfigValidation(t *testing.T) {
	base := testConfig(t, 1)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no window width", func(c *Config) { c.WindowWidth = 0 }},
		{"nil mechanism", func(c *Config) { c.Mechanism = nil }},
		{"no private", func(c *Config) { c.Private = nil }},
		{"negative lateness", func(c *Config) { c.AllowedLateness = -1 }},
		{"negative horizon", func(c *Config) { c.Horizon = -1 }},
		{"negative evict", func(c *Config) { c.EvictAfter = -1 }},
		{"negative shards", func(c *Config) { c.Shards = -2 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Empty Targets is valid now that queries can be registered live.
	cfg := base
	cfg.Targets = nil
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("no targets rejected: %v", err)
	}
	rt.Close()
}

func TestHashSharderStable(t *testing.T) {
	s := HashSharder{}
	for _, key := range []string{"", "a", "stream-42", "taxi-007"} {
		i := s.Shard(key, 8)
		if i < 0 || i >= 8 {
			t.Fatalf("Shard(%q) = %d out of range", key, i)
		}
		if j := s.Shard(key, 8); j != i {
			t.Errorf("Shard(%q) unstable: %d then %d", key, i, j)
		}
	}
}
