package cep

import (
	"sync"
	"sync/atomic"

	"patterndp/internal/event"
	"patterndp/internal/stream"
)

// Plan is a compiled query evaluator: the serving-time form of a Query. The
// expression tree is compiled once — at registration, or once per
// control-plane epoch in the streaming runtime — into
//
//   - a required-type set: event types that must all be present for the
//     pattern to possibly match, letting the hot path skip windows that
//     cannot answer true with a handful of map lookups;
//   - a flat postfix program over presence indicators, replacing the
//     recursive EvalIndicators interpreter (no tree re-traversal, no
//     interface dispatch, no allocation per evaluation);
//   - for Seq-of-Atom patterns, a pool of incremental NFA matchers for
//     concrete-window detection with early exit on the first instance.
//
// A Plan is immutable after Compile and safe for concurrent use by any
// number of goroutines; per-evaluation state lives on the caller's stack or
// in the internal NFA pool.
type Plan struct {
	query Query

	// constVal short-circuits evaluation over indicators: +1 when the
	// pattern is always detected, -1 when it can never be (e.g. TIMES with
	// Min > 1, whose repetition count a released existence bit cannot
	// witness), 0 when the answer depends on the indicators.
	constVal int8
	// conjunctive marks patterns whose indicator answer is exactly "all
	// required types present" (trees of SEQ/AND over atoms): for those the
	// required-set check is the whole evaluation and prog stays nil.
	conjunctive bool
	// required are the types that must all be present, under indicator
	// semantics, for the pattern to possibly match.
	required []event.Type
	// requiredWindow is the analogous set under concrete-window semantics
	// (TIMES is satisfiable there, so the sets can differ).
	requiredWindow []event.Type

	// prog is the postfix indicator program; types is its operand table.
	prog     []planInstr
	types    []event.Type
	stackCap int

	// winAtoms/winProg are the concrete-window counterpart of prog for
	// patterns whose window answer is order-free — no SEQ or TIMES node,
	// only AND/OR/NEG over (predicated) atoms. winAtoms lists the pattern's
	// atom leaves; winProg is a postfix program over their per-window match
	// bits. Because each leaf's "some event matches" bit is mergeable by OR
	// across stream panes, sliding evaluators answer such patterns from
	// per-pane partial bitsets in O(panes) per window instead of
	// re-scanning events (see Plan.Sliding). nil when the pattern needs
	// order or counting (or has more than 64 leaves).
	winAtoms    []*Atom
	winProg     []planInstr
	winStackCap int

	// seq is non-nil for Seq-of-Atom patterns; nfas pools compiled
	// matchers for concrete-window detection.
	seq     *Seq
	nfaOpts []NFAOption
	nfas    sync.Pool
	// dropped accumulates partial matches evicted by the pooled NFAs'
	// maxRuns bound (see WithMaxRuns) — the operator signal for matcher
	// memory pressure.
	dropped atomic.Uint64
}

// planInstr is one postfix instruction of the indicator program.
type planInstr struct {
	op  planOp
	arg int32 // type-table index for opPresent; child count for opAll/opAny
}

type planOp uint8

const (
	opPresent planOp = iota // push present[types[arg]]
	opAll                   // pop arg values, push their conjunction
	opAny                   // pop arg values, push their disjunction
	opNot                   // negate the top of stack
	opTrue                  // push true
	opFalse                 // push false
)

// Compile validates the query and compiles it into a Plan. opts configure
// the pooled NFA matchers used for Seq-of-Atom patterns (e.g. WithMaxRuns);
// they are ignored for other pattern shapes.
func Compile(q Query, opts ...NFAOption) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{query: q, nfaOpts: opts}
	n := lowerIndicator(q.Pattern)
	switch n.kind {
	case pTrue:
		p.constVal = 1
	case pFalse:
		p.constVal = -1
	default:
		p.required = requiredTypes(n)
		if conjunctiveOnly(n) {
			p.conjunctive = true
		} else {
			c := &planCompiler{types: make(map[event.Type]int32)}
			c.emit(n)
			p.prog, p.types, p.stackCap = c.prog, c.table, c.maxDepth
		}
	}
	p.requiredWindow = requiredWindowTypes(q.Pattern)
	if atoms, prog, depth, ok := windowAtomProgram(q.Pattern); ok {
		p.winAtoms, p.winProg, p.winStackCap = atoms, prog, depth
	}
	if s, ok := q.Pattern.(*Seq); ok && seqOfAtoms(s) {
		p.seq = s
		p.nfas.New = func() any {
			m, err := CompileSeq(q.Name, s, 0, opts...)
			if err != nil {
				// Unreachable: the pattern was validated and is
				// Seq-of-Atoms.
				panic(err)
			}
			return m
		}
	}
	return p, nil
}

// MustCompile is Compile for queries known to be valid; it panics on error.
func MustCompile(q Query, opts ...NFAOption) *Plan {
	p, err := Compile(q, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Query returns the compiled query.
func (p *Plan) Query() Query { return p.query }

// RequiredTypes returns the event types that must all be present in a
// window's released indicators for the pattern to possibly match. The
// returned slice is shared and must not be modified.
func (p *Plan) RequiredTypes() []event.Type { return p.required }

// Dropped reports how many partial matches the plan's pooled NFAs have
// evicted under their maxRuns bound since compilation.
func (p *Plan) Dropped() uint64 { return p.dropped.Load() }

// EvalIndicators answers the query over one window's released presence
// indicators — the compiled counterpart of the EvalIndicators function. It
// allocates nothing and is safe for concurrent use.
func (p *Plan) EvalIndicators(present map[event.Type]bool) bool {
	if p.constVal != 0 {
		return p.constVal > 0
	}
	for _, t := range p.required {
		if !present[t] {
			return false
		}
	}
	if p.conjunctive {
		return true
	}
	var scratch [16]bool
	st := scratch[:0]
	if p.stackCap > len(scratch) {
		st = make([]bool, 0, p.stackCap)
	}
	for _, in := range p.prog {
		switch in.op {
		case opPresent:
			st = append(st, present[p.types[in.arg]])
		case opAll:
			n := len(st) - int(in.arg)
			v := true
			for _, b := range st[n:] {
				v = v && b
			}
			st = append(st[:n], v)
		case opAny:
			n := len(st) - int(in.arg)
			v := false
			for _, b := range st[n:] {
				v = v || b
			}
			st = append(st[:n], v)
		case opNot:
			st[len(st)-1] = !st[len(st)-1]
		case opTrue:
			st = append(st, true)
		case opFalse:
			st = append(st, false)
		}
	}
	return st[0]
}

// missingRequired reports whether a required type is absent from the window,
// in which case the pattern cannot match there.
func (p *Plan) missingRequired(w stream.Window) bool {
	for _, t := range p.requiredWindow {
		if !w.Contains(t) {
			return true
		}
	}
	return false
}

// EvalWindow answers the query over one concrete window and returns a
// witness instance when the pattern occurs — the compiled counterpart of
// the EvalWindow function. Seq-of-Atom patterns run on a pooled incremental
// NFA with early exit on the first instance; other shapes prune on the
// required-type set and fall back to the batch evaluator.
func (p *Plan) EvalWindow(w stream.Window) (bool, []event.Event) {
	if p.missingRequired(w) {
		return false, nil
	}
	if p.seq != nil {
		m := p.nfas.Get().(*NFA)
		witness, ok := m.FirstMatch(w.Events)
		p.release(m)
		return ok, witness
	}
	return EvalWindow(p.query.Pattern, w)
}

// DetectWindow is EvalWindow without witness materialization: it answers
// only whether the pattern occurs in the window.
func (p *Plan) DetectWindow(w stream.Window) bool {
	if p.missingRequired(w) {
		return false
	}
	if p.seq != nil {
		m := p.nfas.Get().(*NFA)
		_, ok := m.FirstMatch(w.Events)
		p.release(m)
		return ok
	}
	return Detect(p.query.Pattern, w)
}

// release harvests a pooled NFA's eviction counter, resets it, and returns
// it to the pool.
func (p *Plan) release(m *NFA) {
	if d := m.Dropped(); d > 0 {
		p.dropped.Add(d)
	}
	m.Reset()
	p.nfas.Put(m)
}

// seqOfAtoms reports whether every part of the sequence is an Atom — the
// shape CompileSeq accepts.
func seqOfAtoms(s *Seq) bool {
	for _, part := range s.Parts {
		if _, ok := part.(*Atom); !ok {
			return false
		}
	}
	return len(s.Parts) > 0
}

// --- indicator-semantics lowering ----------------------------------------

// pnode is the lowered, constant-folded form of an expression under
// indicator semantics: SEQ degrades to conjunction (order is not observable
// in released existence bits) and TIMES folds to its inner expression
// (Min ≤ 1) or constant false (Min > 1).
type pnode struct {
	kind  pkind
	typ   event.Type
	parts []*pnode
}

type pkind uint8

const (
	pAtom pkind = iota
	pAll
	pAny
	pNot
	pTrue
	pFalse
)

var (
	nodeTrue  = &pnode{kind: pTrue}
	nodeFalse = &pnode{kind: pFalse}
)

// lowerIndicator lowers an expression tree to its indicator-semantics form,
// folding constants so the compiled program never evaluates dead branches.
// The lowering mirrors EvalIndicators exactly; TestPropertyPlanIndicators
// asserts the equivalence over randomized expressions.
func lowerIndicator(e Expr) *pnode {
	switch x := e.(type) {
	case *Atom:
		return &pnode{kind: pAtom, typ: x.Type}
	case *Seq:
		return lowerAll(x.Parts)
	case *And:
		return lowerAll(x.Parts)
	case *Or:
		return lowerAny(x.Parts)
	case *Neg:
		inner := lowerIndicator(x.Inner)
		switch inner.kind {
		case pTrue:
			return nodeFalse
		case pFalse:
			return nodeTrue
		case pNot:
			return inner.parts[0]
		}
		return &pnode{kind: pNot, parts: []*pnode{inner}}
	case *Times:
		if x.Min > 1 {
			// A released existence bit can witness one occurrence at
			// most (see EvalIndicators).
			return nodeFalse
		}
		return lowerIndicator(x.Inner)
	default:
		// Unknown node kinds are rejected by Validate before Compile.
		panic("cep: unknown expression node in plan lowering")
	}
}

func lowerAll(parts []Expr) *pnode {
	out := make([]*pnode, 0, len(parts))
	for _, part := range parts {
		n := lowerIndicator(part)
		switch n.kind {
		case pTrue:
			continue
		case pFalse:
			return nodeFalse
		}
		out = append(out, n)
	}
	switch len(out) {
	case 0:
		return nodeTrue
	case 1:
		return out[0]
	}
	return &pnode{kind: pAll, parts: out}
}

func lowerAny(parts []Expr) *pnode {
	out := make([]*pnode, 0, len(parts))
	for _, part := range parts {
		n := lowerIndicator(part)
		switch n.kind {
		case pFalse:
			continue
		case pTrue:
			return nodeTrue
		}
		out = append(out, n)
	}
	switch len(out) {
	case 0:
		return nodeFalse
	case 1:
		return out[0]
	}
	return &pnode{kind: pAny, parts: out}
}

// requiredTypes computes the types that must all be present for the lowered
// pattern to possibly match: an atom requires its type, a conjunction the
// union over its parts, a disjunction the intersection (only a type every
// branch needs is truly required), and a negation nothing (it can match an
// empty window).
func requiredTypes(n *pnode) []event.Type {
	set := requiredSet(n)
	out := make([]event.Type, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sortTypes(out)
	return out
}

func requiredSet(n *pnode) map[event.Type]bool {
	switch n.kind {
	case pAtom:
		return map[event.Type]bool{n.typ: true}
	case pAll:
		out := make(map[event.Type]bool)
		for _, part := range n.parts {
			for t := range requiredSet(part) {
				out[t] = true
			}
		}
		return out
	case pAny:
		out := requiredSet(n.parts[0])
		for _, part := range n.parts[1:] {
			sub := requiredSet(part)
			for t := range out {
				if !sub[t] {
					delete(out, t)
				}
			}
		}
		return out
	default: // pNot, pTrue, pFalse
		return nil
	}
}

// requiredWindowTypes is requiredTypes under concrete-window semantics,
// computed from the original expression: TIMES is satisfiable there (its
// occurrences still need the inner pattern's required types), and predicates
// only narrow an atom, so its type stays required.
func requiredWindowTypes(e Expr) []event.Type {
	set := requiredWindowSet(e)
	out := make([]event.Type, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sortTypes(out)
	return out
}

func requiredWindowSet(e Expr) map[event.Type]bool {
	switch x := e.(type) {
	case *Atom:
		return map[event.Type]bool{x.Type: true}
	case *Seq:
		return unionRequiredWindow(x.Parts)
	case *And:
		return unionRequiredWindow(x.Parts)
	case *Or:
		out := requiredWindowSet(x.Parts[0])
		for _, part := range x.Parts[1:] {
			sub := requiredWindowSet(part)
			for t := range out {
				if !sub[t] {
					delete(out, t)
				}
			}
		}
		return out
	case *Neg:
		return nil
	case *Times:
		// Validate enforces Min >= 1: at least one occurrence of the
		// inner pattern is needed, hence its required types are too.
		return requiredWindowSet(x.Inner)
	default:
		panic("cep: unknown expression node in plan lowering")
	}
}

func unionRequiredWindow(parts []Expr) map[event.Type]bool {
	out := make(map[event.Type]bool)
	for _, part := range parts {
		for t := range requiredWindowSet(part) {
			out[t] = true
		}
	}
	return out
}

func sortTypes(ts []event.Type) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// conjunctiveOnly reports whether the lowered pattern is a pure conjunction
// of atoms, for which "all required types present" is the full indicator
// answer and no program is needed.
func conjunctiveOnly(n *pnode) bool {
	switch n.kind {
	case pAtom:
		return true
	case pAll:
		for _, part := range n.parts {
			if !conjunctiveOnly(part) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// --- program emission -----------------------------------------------------

type planCompiler struct {
	prog     []planInstr
	table    []event.Type
	types    map[event.Type]int32
	depth    int
	maxDepth int
}

func (c *planCompiler) push(in planInstr, delta int) {
	c.prog = append(c.prog, in)
	c.depth += delta
	if c.depth > c.maxDepth {
		c.maxDepth = c.depth
	}
}

func (c *planCompiler) typeIndex(t event.Type) int32 {
	if i, ok := c.types[t]; ok {
		return i
	}
	i := int32(len(c.table))
	c.table = append(c.table, t)
	c.types[t] = i
	return i
}

// windowAtomProgram compiles an expression into a postfix program over
// atom-leaf match bits, valid under concrete-window semantics: it exists
// exactly when the window answer is a pure boolean combination of "some
// event in the window matches leaf i" — i.e. the tree holds only AND/OR/NEG
// over atoms. SEQ needs order and TIMES needs counts, so their presence (or
// more than 64 leaves, the bitset width) returns ok == false.
func windowAtomProgram(e Expr) (atoms []*Atom, prog []planInstr, stackCap int, ok bool) {
	c := &winCompiler{}
	if !c.emit(e) || len(c.atoms) > 64 {
		return nil, nil, 0, false
	}
	return c.atoms, c.prog, c.maxDepth, true
}

type winCompiler struct {
	atoms    []*Atom
	prog     []planInstr
	depth    int
	maxDepth int
}

func (c *winCompiler) push(in planInstr, delta int) {
	c.prog = append(c.prog, in)
	c.depth += delta
	if c.depth > c.maxDepth {
		c.maxDepth = c.depth
	}
}

func (c *winCompiler) emit(e Expr) bool {
	switch x := e.(type) {
	case *Atom:
		c.push(planInstr{op: opPresent, arg: int32(len(c.atoms))}, 1)
		c.atoms = append(c.atoms, x)
		return true
	case *And:
		for _, p := range x.Parts {
			if !c.emit(p) {
				return false
			}
		}
		c.push(planInstr{op: opAll, arg: int32(len(x.Parts))}, 1-len(x.Parts))
		return true
	case *Or:
		for _, p := range x.Parts {
			if !c.emit(p) {
				return false
			}
		}
		c.push(planInstr{op: opAny, arg: int32(len(x.Parts))}, 1-len(x.Parts))
		return true
	case *Neg:
		if !c.emit(x.Inner) {
			return false
		}
		c.push(planInstr{op: opNot}, 0)
		return true
	default: // *Seq, *Times: order or counting — not bit-mergeable
		return false
	}
}

// evalWindowBits runs the window atom program over a bitset of per-leaf
// match bits (bit i set iff some window event matches winAtoms[i]).
func (p *Plan) evalWindowBits(bits uint64) bool {
	var scratch [16]bool
	st := scratch[:0]
	if p.winStackCap > len(scratch) {
		st = make([]bool, 0, p.winStackCap)
	}
	for _, in := range p.winProg {
		switch in.op {
		case opPresent:
			st = append(st, bits&(1<<uint(in.arg)) != 0)
		case opAll:
			n := len(st) - int(in.arg)
			v := true
			for _, b := range st[n:] {
				v = v && b
			}
			st = append(st[:n], v)
		case opAny:
			n := len(st) - int(in.arg)
			v := false
			for _, b := range st[n:] {
				v = v || b
			}
			st = append(st[:n], v)
		case opNot:
			st[len(st)-1] = !st[len(st)-1]
		case opTrue:
			st = append(st, true)
		case opFalse:
			st = append(st, false)
		}
	}
	return st[0]
}

func (c *planCompiler) emit(n *pnode) {
	switch n.kind {
	case pAtom:
		c.push(planInstr{op: opPresent, arg: c.typeIndex(n.typ)}, 1)
	case pAll:
		for _, part := range n.parts {
			c.emit(part)
		}
		c.push(planInstr{op: opAll, arg: int32(len(n.parts))}, 1-len(n.parts))
	case pAny:
		for _, part := range n.parts {
			c.emit(part)
		}
		c.push(planInstr{op: opAny, arg: int32(len(n.parts))}, 1-len(n.parts))
	case pNot:
		c.emit(n.parts[0])
		c.push(planInstr{op: opNot}, 0)
	case pTrue:
		c.push(planInstr{op: opTrue}, 1)
	case pFalse:
		c.push(planInstr{op: opFalse}, 1)
	}
}
