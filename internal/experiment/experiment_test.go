package experiment

import (
	"strings"
	"testing"

	"patterndp/internal/core"
	"patterndp/internal/dp"
	"patterndp/internal/synth"
	"patterndp/internal/taxi"
)

// smallSynthBench builds a fast synthetic bench for tests.
func smallSynthBench(t *testing.T, seed int64) *Bench {
	t.Helper()
	cfg := synth.DefaultConfig(seed)
	cfg.NumWindows = 120
	b, err := SynthBench(cfg, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// smallTaxiBench builds a fast taxi bench for tests.
func smallTaxiBench(t *testing.T, seed int64) *Bench {
	t.Helper()
	cfg := taxi.DefaultConfig(seed)
	cfg.GridW, cfg.GridH = 6, 6
	cfg.NumTaxis = 10
	cfg.Ticks = 120
	b, err := TaxiBench(cfg, 4, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func fastSweep(epsilons []dp.Epsilon, specs []MechanismSpec, seed int64) SweepConfig {
	return SweepConfig{
		Epsilons: epsilons,
		Specs:    specs,
		Reps:     2,
		Seed:     seed,
		Adaptive: core.AdaptiveConfig{MaxIters: 5},
	}
}

func TestBenchValidate(t *testing.T) {
	b := smallSynthBench(t, 1)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Bench){
		func(b *Bench) { b.Name = "" },
		func(b *Bench) { b.Eval = nil },
		func(b *Bench) { b.Targets = nil },
		func(b *Bench) { b.Private = nil },
		func(b *Bench) { b.Alpha = 2 },
		func(b *Bench) { b.WEventW = 0 },
	}
	for i, mutate := range cases {
		bb := *b
		mutate(&bb)
		if err := bb.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSynthBenchSplit(t *testing.T) {
	b := smallSynthBench(t, 2)
	if len(b.History) == 0 || len(b.Eval) == 0 {
		t.Fatal("history/eval split empty")
	}
	if len(b.History)+len(b.Eval) != 120 {
		t.Errorf("split sizes %d+%d != 120", len(b.History), len(b.Eval))
	}
	if len(b.Targets) != 5 || len(b.Private) != 3 {
		t.Errorf("targets/private = %d/%d", len(b.Targets), len(b.Private))
	}
}

func TestTaxiBenchShape(t *testing.T) {
	b := smallTaxiBench(t, 3)
	if len(b.Private) == 0 || len(b.Targets) == 0 {
		t.Fatal("empty private/target sets")
	}
	for _, pt := range b.Private {
		if pt.Len() != 1 {
			t.Errorf("taxi private pattern len = %d, want 1", pt.Len())
		}
	}
}

func TestTaxiBenchBadWindow(t *testing.T) {
	cfg := taxi.DefaultConfig(1)
	if _, err := TaxiBench(cfg, 0, 5, 0.5); err == nil {
		t.Error("windowTicks=0 accepted")
	}
}

func TestBuildMechanismAllSpecs(t *testing.T) {
	b := smallSynthBench(t, 4)
	for _, spec := range append(Fig4Specs(), SpecIdentity) {
		m, err := b.BuildMechanism(spec, 1.0, core.AdaptiveConfig{MaxIters: 2})
		if err != nil {
			t.Errorf("%s: %v", spec, err)
			continue
		}
		if string(spec) != m.Name() && spec != SpecIdentity {
			t.Errorf("spec %s built mechanism named %s", spec, m.Name())
		}
	}
	if _, err := b.BuildMechanism("bogus", 1, core.AdaptiveConfig{}); err == nil {
		t.Error("unknown spec accepted")
	}
}

func TestSweepConfigValidate(t *testing.T) {
	good := fastSweep([]dp.Epsilon{1}, []MechanismSpec{SpecUniform}, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []SweepConfig{
		{Specs: []MechanismSpec{SpecUniform}, Reps: 1},
		{Epsilons: []dp.Epsilon{-1}, Specs: []MechanismSpec{SpecUniform}, Reps: 1},
		{Epsilons: []dp.Epsilon{1}, Reps: 1},
		{Epsilons: []dp.Epsilon{1}, Specs: []MechanismSpec{SpecUniform}, Reps: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad sweep %d accepted", i)
		}
	}
}

func TestRunSweepProducesAllCells(t *testing.T) {
	b := smallSynthBench(t, 5)
	rs, err := RunSweep(b, fastSweep([]dp.Epsilon{0.5, 5}, []MechanismSpec{SpecUniform, SpecBD}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("results = %d, want 4", len(rs))
	}
	for _, r := range rs {
		if r.MRE.N != 2 {
			t.Errorf("cell %s@%v has %d reps", r.Mechanism, r.Epsilon, r.MRE.N)
		}
		if r.MRE.Mean < -0.05 || r.MRE.Mean > 1.05 {
			t.Errorf("MRE %v out of range for %s@%v", r.MRE.Mean, r.Mechanism, r.Epsilon)
		}
	}
}

func TestRunSweepDeterministic(t *testing.T) {
	b := smallSynthBench(t, 6)
	cfg := fastSweep([]dp.Epsilon{1}, []MechanismSpec{SpecUniform}, 42)
	r1, err := RunSweep(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSweep(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1[0].MRE.Mean != r2[0].MRE.Mean {
		t.Errorf("sweep not deterministic: %v vs %v", r1[0].MRE.Mean, r2[0].MRE.Mean)
	}
}

func TestMREDecreasesWithEpsilon(t *testing.T) {
	// The headline monotonic trend of Fig. 4: more budget, less error.
	// Use well-separated budgets and the uniform mechanism (no fit noise).
	b := smallSynthBench(t, 7)
	rs, err := RunSweep(b, SweepConfig{
		Epsilons: []dp.Epsilon{0.1, 20},
		Specs:    []MechanismSpec{SpecUniform},
		Reps:     4,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].MRE.Mean <= rs[1].MRE.Mean {
		t.Errorf("MRE(0.1)=%v <= MRE(20)=%v", rs[0].MRE.Mean, rs[1].MRE.Mean)
	}
}

func TestPatternLevelBeatsBaselines(t *testing.T) {
	// The paper's headline claim at a moderate budget on the synthetic
	// dataset: uniform (pattern-level) has lower MRE than BD, BA, landmark.
	b := smallSynthBench(t, 8)
	rs, err := RunSweep(b, SweepConfig{
		Epsilons: []dp.Epsilon{2},
		Specs:    []MechanismSpec{SpecUniform, SpecBD, SpecBA, SpecLandmark},
		Reps:     4,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	byMech := map[MechanismSpec]float64{}
	for _, r := range rs {
		byMech[r.Mechanism] = r.MRE.Mean
	}
	for _, spec := range []MechanismSpec{SpecBD, SpecBA, SpecLandmark} {
		if byMech[SpecUniform] >= byMech[spec] {
			t.Errorf("uniform MRE %v not better than %s %v",
				byMech[SpecUniform], spec, byMech[spec])
		}
	}
}

func TestIdentityHasZeroMRE(t *testing.T) {
	b := smallSynthBench(t, 9)
	rs, err := RunSweep(b, fastSweep([]dp.Epsilon{1}, []MechanismSpec{SpecIdentity}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].MRE.Mean != 0 {
		t.Errorf("identity MRE = %v, want 0", rs[0].MRE.Mean)
	}
	if rs[0].Quality.Mean != 1 {
		t.Errorf("identity quality = %v, want 1", rs[0].Quality.Mean)
	}
}

func TestMergeResults(t *testing.T) {
	b1 := smallSynthBench(t, 10)
	b2 := smallSynthBench(t, 11)
	cfg := fastSweep([]dp.Epsilon{1}, []MechanismSpec{SpecUniform}, 1)
	r1, _ := RunSweep(b1, cfg)
	r2, _ := RunSweep(b2, cfg)
	merged := MergeResults(r1, r2)
	if len(merged) != 1 {
		t.Fatalf("merged cells = %d, want 1", len(merged))
	}
	if merged[0].MRE.N != 2 {
		t.Errorf("merged N = %d, want 2", merged[0].MRE.N)
	}
	wantMean := (r1[0].MRE.Mean + r2[0].MRE.Mean) / 2
	if diff := merged[0].MRE.Mean - wantMean; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("merged mean %v, want %v", merged[0].MRE.Mean, wantMean)
	}
}

func TestWriteTable(t *testing.T) {
	b := smallSynthBench(t, 12)
	rs, _ := RunSweep(b, fastSweep([]dp.Epsilon{0.5, 1}, []MechanismSpec{SpecUniform, SpecBA}, 1))
	var sb strings.Builder
	WriteTable(&sb, "test table", rs)
	out := sb.String()
	if !strings.Contains(out, "test table") || !strings.Contains(out, "uniform") || !strings.Contains(out, "ba") {
		t.Errorf("table output missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "0.50") || !strings.Contains(out, "1.00") {
		t.Errorf("table missing epsilon rows:\n%s", out)
	}
	var empty strings.Builder
	WriteTable(&empty, "none", nil)
	if !strings.Contains(empty.String(), "no results") {
		t.Error("empty table not handled")
	}
}

func TestBudgetSplitDemo(t *testing.T) {
	var sb strings.Builder
	if err := BudgetSplitDemo(&sb, 1.5, 3); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "eps_i=0.5000") {
		t.Errorf("demo output missing uniform split:\n%s", out)
	}
	if !strings.Contains(out, "composed pattern-level budget: 1.5000") {
		t.Errorf("demo output missing composition:\n%s", out)
	}
	if err := BudgetSplitDemo(&sb, 1, 0); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestAblationAlphaRuns(t *testing.T) {
	cfg := DefaultFig4Config(1)
	cfg.Reps = 1
	cfg.Adaptive.MaxIters = 2
	// Shrink the dataset via a tiny sweep by reusing AblationAlpha but the
	// generator config inside uses DefaultConfig; keep alphas small in count.
	rows, err := AblationAlpha(cfg, 1.0, []float64{0.0, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var sb strings.Builder
	WriteAblation(&sb, "alpha ablation", "alpha", rows)
	if !strings.Contains(sb.String(), "alpha ablation") {
		t.Error("ablation table broken")
	}
	WriteAblation(&sb, "empty", "p", nil)
	if !strings.Contains(sb.String(), "no results") {
		t.Error("empty ablation not handled")
	}
}

func TestAblationStepFactorRuns(t *testing.T) {
	cfg := DefaultFig4Config(2)
	cfg.Reps = 1
	cfg.Adaptive.MaxIters = 2
	rows, err := AblationStepFactor(cfg, 1.0, []float64{0.01, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if len(row.Results) != 1 || row.Results[0].Mechanism != SpecAdaptive {
			t.Errorf("row results = %+v", row.Results)
		}
	}
}

func TestFig4SyntheticSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4 in short mode")
	}
	cfg := DefaultFig4Config(3)
	cfg.Reps = 1
	cfg.SynthDatasets = 1
	cfg.Epsilons = []dp.Epsilon{1}
	cfg.Adaptive.MaxIters = 2
	rs, err := Fig4Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(Fig4Specs()) {
		t.Errorf("results = %d, want %d", len(rs), len(Fig4Specs()))
	}
	if _, err := Fig4Synthetic(Fig4Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestFig4TaxiSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4 in short mode")
	}
	cfg := DefaultFig4Config(4)
	cfg.Reps = 1
	cfg.Epsilons = []dp.Epsilon{1}
	cfg.TaxiCfg.GridW, cfg.TaxiCfg.GridH = 6, 6
	cfg.TaxiCfg.NumTaxis = 10
	cfg.TaxiCfg.Ticks = 100
	cfg.Adaptive.MaxIters = 2
	rs, err := Fig4Taxi(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(Fig4Specs()) {
		t.Errorf("results = %d, want %d", len(rs), len(Fig4Specs()))
	}
}
